"""Metrics primitives: counters, gauges, fixed-bucket histograms, a registry.

The backend and simulator report what they do through a
:class:`MetricsRegistry` — a flat, name-keyed collection of

* :class:`Counter` — a monotone event count (``inc`` only),
* :class:`Gauge` — a point-in-time level (``set``/``inc``/``dec``),
* :class:`Histogram` — observation counts over fixed upper-bound buckets.

Registries export themselves two ways: :meth:`MetricsRegistry.as_dict`
(the JSON document ``repro simulate --metrics-out`` writes and ``repro
stats`` reads back) and :meth:`MetricsRegistry.render_prometheus` (the
Prometheus text exposition format, for scraping in a deployment).

Hot paths that should pay nothing when observability is off take a
registry argument defaulting to :data:`NULL_REGISTRY`, whose instruments
are shared do-nothing singletons.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram upper bounds (a generic small-count/latency ladder).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name made safe for the Prometheus exposition format."""
    return _NAME_RE.sub("_", name)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def reset(self) -> None:
        """Zero the counter (process restart semantics)."""
        self._value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value:g})"


class Gauge:
    """A value that can go up and down (a level, not a count)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: Union[int, float]) -> None:
        """Set the level."""
        self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Raise the level."""
        self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Lower the level."""
        self._value -= amount

    def reset(self) -> None:
        """Zero the gauge."""
        self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value:g})"


class Histogram:
    """Observation counts over fixed, cumulative-exportable buckets.

    ``bounds`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound, so ``sum(bucket_counts)``
    always equals :attr:`count`.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_count", "_sum")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)   # last slot: +Inf
        self._count = 0
        self._sum = 0.0

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) observation counts, +Inf last."""
        return list(self._counts)

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} cannot observe NaN")
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out

    def reset(self) -> None:
        """Forget all observations (bucket layout is kept)."""
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self._count})"


class MetricsRegistry:
    """A flat, name-keyed collection of counters, gauges and histograms.

    Instruments are created on first request and shared thereafter
    (get-or-create), so independently instrumented components that agree
    on a name accumulate into the same instrument.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        self._check_free(name, self._counters)
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name, help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        self._check_free(name, self._gauges)
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at creation)."""
        self._check_free(name, self._histograms)
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets, help)
        return instrument

    def _check_free(self, name: str, home: Dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not home and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with a different type"
                )

    # -- introspection -------------------------------------------------------

    @property
    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def as_dict(self) -> Dict[str, Dict]:
        """A plain-JSON document of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.sum,
                    "bounds": list(h.bounds),
                    "bucket_counts": h.bucket_counts,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            prom = _prom_name(name)
            if counter.help:
                lines.append(f"# HELP {prom} {counter.help}")
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {counter.value:g}")
        for name, gauge in sorted(self._gauges.items()):
            prom = _prom_name(name)
            if gauge.help:
                lines.append(f"# HELP {prom} {gauge.help}")
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {gauge.value:g}")
        for name, histogram in sorted(self._histograms.items()):
            prom = _prom_name(name)
            if histogram.help:
                lines.append(f"# HELP {prom} {histogram.help}")
            lines.append(f"# TYPE {prom} histogram")
            for bound, cumulative in histogram.cumulative():
                le = "+Inf" if math.isinf(bound) else f"{bound:g}"
                lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{prom}_sum {histogram.sum:g}")
            lines.append(f"{prom}_count {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every instrument (layout and registrations are kept)."""
        for family in (self._counters, self._gauges, self._histograms):
            for instrument in family.values():
                instrument.reset()


class _NullCounter(Counter):
    """A counter that swallows everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass


class _NullGauge(Gauge):
    """A gauge that swallows everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: Union[int, float]) -> None:
        pass

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass


class _NullHistogram(Histogram):
    """A histogram that swallows everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", buckets=(1.0,))

    def observe(self, value: Union[int, float]) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose instruments do nothing.

    Components default to :data:`NULL_REGISTRY` so instrumented hot
    paths cost a no-op method call when observability is disabled.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter()
        self._null_gauge = _NullGauge()
        self._null_histogram = _NullHistogram()

    def counter(self, name: str, help: str = "") -> Counter:
        return self._null_counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._null_gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._null_histogram


#: Shared do-nothing registry: the default for instrumented components.
NULL_REGISTRY = NullRegistry()
