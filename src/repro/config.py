"""Parameter sets for the whole system, with the paper's defaults.

Each subsystem takes one of these frozen dataclasses so experiments can
sweep a parameter without touching module code.  Field values marked
"§x" cite the section of the ICDCS'15 paper they come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class BeepConfig:
    """IC-card reader beep detection (§III-B, §IV-D)."""

    sample_rate_hz: int = 8000          # §IV-D: microphone sampling rate
    tone_frequencies_hz: Tuple[float, ...] = (1000.0, 3000.0)  # Singapore beep
    window_ms: float = 300.0            # §III-B: sliding window w = 300 ms
    jump_sigma: float = 3.0             # §III-B: 3-standard-deviation jump
    min_band_ratio: float = 0.05        # absolute floor: beep tones dominate
    beep_duration_ms: float = 120.0     # typical EZ-link reader chirp length
    min_gap_ms: float = 500.0           # refractory gap between distinct beeps


@dataclass(frozen=True)
class AccelConfig:
    """Accelerometer bus-vs-train filter (§III-B)."""

    sample_rate_hz: float = 50.0
    window_s: float = 30.0
    variance_threshold: float = 0.10    # (m/s^2)^2; buses exceed, trains do not


@dataclass(frozen=True)
class TripRecorderConfig:
    """Phone-side trip lifecycle (§III-B)."""

    trip_timeout_s: float = 600.0       # conclude trip after 10 min of silence
    upload_period_s: float = 300.0      # periodic upload


@dataclass(frozen=True)
class MatchingConfig:
    """Modified Smith-Waterman fingerprint matching (§III-C, Table I)."""

    match_score: float = 1.0
    mismatch_penalty: float = 0.3       # swept 0.1..0.9; 0.3 best
    gap_penalty: float = 0.3
    accept_threshold: float = 2.0       # γ = 2 (from Fig. 2(b) measurement)
    indexed: bool = True                # prune candidates via the inverted
                                        # cell-id index (exact; False scans
                                        # the whole DB — the reference path)
    cache_size: int = 4096              # LRU memo entries for repeat
                                        # sequences (0 disables the memo)


@dataclass(frozen=True)
class ClusteringConfig:
    """Per-bus-stop co-clustering of cellular samples (§III-C2)."""

    max_similarity: float = 7.0         # s0: maximum possible similarity score
    max_interval_s: float = 30.0        # t0: max gap between same-stop samples
    threshold: float = 0.6              # ε (accuracy plateau 0.3..1.3, Fig. 5)


@dataclass(frozen=True)
class TripMappingConfig:
    """Route-constrained sequence estimation (§III-C3)."""

    same_stop_weight: float = 0.5       # R(x, x): duplicate-cluster tolerance
    downstream_weight: float = 1.0      # R(x, y) when y follows x on a route
    allow_transfers: bool = True        # concatenation of multiple routes


@dataclass(frozen=True)
class TrafficModelConfig:
    """Linear transit model ATT = a + b * BTT (§III-D, Eq. 3)."""

    b: float = 0.5                      # fitted range [0.3, 0.8]; paper uses 0.5
    min_speed_ms: float = 1.0           # clamp against degenerate estimates
    max_speed_ms: float = 33.3          # 120 km/h sanity ceiling
    dwell_tail_s: float = 14.0          # doors stay open past the last tap at
                                        # the departure stop, and the first tap
                                        # at the arrival stop lags the doors;
                                        # both are subtracted from measured leg
                                        # times (calibrated against timetables)


@dataclass(frozen=True)
class FusionConfig:
    """Bayesian sequential speed fusion (§III-D, Eq. 4)."""

    update_period_s: float = 300.0      # T = 5 min
    observation_sigma_kmh: float = 4.0  # per-trip speed observation noise
    prior_sigma_kmh: float = 15.0       # weak prior around free-flow speed
    staleness_inflation_kmh_per_hr: float = 12.0  # variance growth when silent


@dataclass(frozen=True)
class RadioConfig:
    """Cellular propagation and scanning (§III-A)."""

    tx_power_dbm: float = 43.0          # macro-cell downlink EIRP
    path_loss_exponent: float = 3.5     # dense-urban log-distance exponent
    path_loss_ref_db: float = 34.0      # loss at 1 m reference distance
    shadowing_sigma_db: float = 8.0     # static spatial shadowing
    shadow_grid_m: float = 60.0         # correlation grid of the shadow field
    temporal_sigma_db: float = 1.8      # per-measurement fluctuation
    rx_sensitivity_dbm: float = -86.0   # neighbour-list reporting floor
    max_visible: int = 7                # phones report up to 7 neighbours
    min_visible: int = 1


@dataclass(frozen=True)
class GpsConfig:
    """Urban-canyon GPS error model calibrated to Fig. 1."""

    stationary_median_m: float = 40.0
    stationary_p90_m: float = 75.0
    onbus_median_m: float = 68.0
    onbus_p90_m: float = 130.0


@dataclass(frozen=True)
class PowerConfig:
    """Component power model calibrated to Table III (mW).

    ``htc`` / ``nexus`` baseline+component values reproduce the paper's
    measured rows; the Goertzel-vs-FFT delta reproduces the ~60 mW
    saving reported in §IV-D.
    """

    htc_baseline_mw: float = 70.0
    nexus_baseline_mw: float = 84.0
    cellular_mw: float = 2.0            # sampling cellular signals: negligible
    gps_mw: float = 270.0               # continuous GPS at 0.5 Hz
    mic_goertzel_mw: float = 10.0       # microphone + Goertzel band extraction
    mic_fft_mw: float = 70.0            # microphone + full FFT (≈60 mW more)
    gps_mic_overhead_mw: float = 100.0  # concurrency overhead (no sensor sleep)
    rel_std: float = 0.12               # relative std of repeated sessions


@dataclass(frozen=True)
class RiderConfig:
    """Rider arrival / boarding behaviour (§IV-A)."""

    boarding_rate_per_stop: float = 1.2   # mean boarders per stop at base demand
    participation_rate: float = 0.12      # fraction of boarders running the app
    beep_detect_probability: float = 0.985  # end-to-end beep detection rate
    false_sample_probability: float = 0.01  # spurious beep → stray sample
    mean_ride_stops: float = 6.0


@dataclass(frozen=True)
class BusConfig:
    """Bus operation model (§III-D)."""

    max_speed_ms: float = 13.9          # 50 km/h urban bus cap
    dwell_base_s: float = 8.0           # door open/close overhead
    dwell_per_passenger_s: float = 2.0  # per boarder/alighter
    btt_noise_std: float = 0.08         # lognormal std of segment BTT noise
    headway_s: float = 600.0            # default dispatch headway (10 min)


@dataclass(frozen=True)
class TaxiConfig:
    """Simulated LTA taxi AVL feed (ground truth, §IV-C)."""

    fleet_size: int = 120
    report_period_s: float = 30.0
    aggressiveness_gain: float = 0.30   # extra speed above 40 km/h car flow
    aggressiveness_offset_kmh: float = 2.0
    speed_noise_kmh: float = 2.0


@dataclass(frozen=True)
class UplinkConfig:
    """Phone→server upload channel (§III-B: WiFi or 3G)."""

    loss_probability: float = 0.01      # upload never arrives
    base_delay_s: float = 60.0          # connection setup + batching
    mean_extra_delay_s: float = 120.0   # exponential tail (WiFi windows)


@dataclass(frozen=True)
class AnalyticsConfig:
    """Fleet-health analytics stage (headways, ghost buses, O-D flows).

    The stage consumes mapped trips after the single-writer merge; it
    never feeds back into the estimators, so disabling it changes no
    pipeline output (the bench guards the <5% ingest overhead target).
    """

    enabled: bool = True
    #: Mapped arrivals at one (route, stop) closer together than this are
    #: the same physical bus seen by several riders, not two buses.
    arrival_dedup_s: float = 120.0
    #: A headway shorter than this fraction of the scheduled headway
    #: counts as bunched.
    bunching_factor: float = 0.25
    #: A route unseen for longer than this multiple of its scheduled
    #: headway starts accruing ghost vehicles.
    ghost_staleness_factor: float = 2.0
    #: Ghost-count gauge ceiling (a dead route should alert, not count
    #: to infinity).
    max_ghosts_per_route: int = 12
    #: Trailing horizon for the live bunching-rate / EWT gauges.
    window_s: float = 3600.0
    #: Ring-buffer slots per analytics window.
    window_buckets: int = 12
    #: Bounded per-(route, stop) arrival-event history.
    max_arrivals_per_stop: int = 512
    #: Distinct origin-destination pairs tracked exactly; extra pairs
    #: aggregate into one overflow bucket (mirrors the label cap).
    max_od_pairs: int = 4096
    #: Flows surfaced by ``repro analytics`` and the JSON artifact.
    top_k_flows: int = 10


@dataclass(frozen=True)
class IngestConfig:
    """Parallel ingest IPC strategy (worker pools, §III-C at scale).

    These knobs govern only *how* shards and shared state cross the
    process boundary — never what any estimator computes.  Both modes
    are bit-identical to serial ingest; ``shared_store=False`` keeps the
    pickled-broadcast path alive as the A/B baseline the IPC benchmarks
    compare against.
    """

    #: Broadcast the fingerprint DB + inverted index + route network as
    #: one read-only shared-memory segment (zero-copy attach per worker)
    #: and ship shards through the columnar codec, instead of pickling
    #: everything per worker / per shard.
    shared_store: bool = True
    #: Hottest verdict-memo entries shipped to each worker at pool init
    #: so its cache starts warm (0 disables pre-warming).
    memo_warm: int = 512
    #: Durable-store snapshot cadence: WAL records between automatic
    #: snapshots at quiescent points (0 disables automatic snapshots;
    #: recovery then replays the whole WAL).  Ignored without a store.
    store_snapshot_every: int = 1000
    #: Durable-store fsync policy: ``always`` (fsync per WAL append),
    #: ``batch`` (flush per append, fsync at snapshots/close) or
    #: ``never`` (leave durability to the OS).  All three survive a
    #: killed process; they differ under a machine power cut.
    store_fsync: str = "batch"


@dataclass(frozen=True)
class TracingConfig:
    """Span-retention defaults for the tracing subsystem.

    Aggregate stage timing is always available through
    :class:`~repro.obs.tracing.Tracer`; these knobs only govern *span
    record* retention (``--trace-out``), which is off by default — the
    hot path then stays on the :data:`~repro.obs.tracing.NULL_TRACER`
    no-op fast path.  Tracing is observation only: no retained span or
    exemplar ever feeds back into a pipeline decision, so traced runs
    stay bit-identical to untraced ones.
    """

    #: Whether CLI runs retain span records without ``--trace-out``.
    enabled: bool = False
    #: Head-sampling probability for keyed (per-trip) spans; decided
    #: deterministically per ``(sample_seed, trip_key)``.
    head_sample_rate: float = 1.0
    #: Slowest-N trips always kept as tail exemplars.
    slow_exemplars: int = 8
    #: Seed of the per-key head-sampling decision.
    sample_seed: int = 0
    #: Span records buffered per keyed trip before dropping.
    max_spans_per_trace: int = 4096
    #: Global retained-record budget across a run.
    max_records: int = 200_000
    #: ``repro stats`` / ``repro alerts`` print a tracing hint when any
    #: slow-trip exemplar exceeds this duration.
    slow_trip_hint_ms: float = 50.0


@dataclass(frozen=True)
class GoogleMapsConfig:
    """Coarse 4-level traffic indicator baseline (Fig. 10)."""

    update_period_s: float = 1800.0     # slow refresh
    level_bounds_kmh: Tuple[float, float, float] = (25.0, 40.0, 52.0)
    coverage_fraction: float = 0.35     # only major roads carry live data


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of every subsystem configuration (paper defaults)."""

    beep: BeepConfig = field(default_factory=BeepConfig)
    accel: AccelConfig = field(default_factory=AccelConfig)
    trip_recorder: TripRecorderConfig = field(default_factory=TripRecorderConfig)
    matching: MatchingConfig = field(default_factory=MatchingConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    trip_mapping: TripMappingConfig = field(default_factory=TripMappingConfig)
    traffic_model: TrafficModelConfig = field(default_factory=TrafficModelConfig)
    fusion: FusionConfig = field(default_factory=FusionConfig)
    radio: RadioConfig = field(default_factory=RadioConfig)
    gps: GpsConfig = field(default_factory=GpsConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    riders: RiderConfig = field(default_factory=RiderConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    taxi: TaxiConfig = field(default_factory=TaxiConfig)
    uplink: UplinkConfig = field(default_factory=UplinkConfig)
    google_maps: GoogleMapsConfig = field(default_factory=GoogleMapsConfig)
    analytics: AnalyticsConfig = field(default_factory=AnalyticsConfig)
    tracing: TracingConfig = field(default_factory=TracingConfig)
    ingest: IngestConfig = field(default_factory=IngestConfig)


DEFAULT_CONFIG = SystemConfig()
