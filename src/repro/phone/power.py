"""Phone power model calibrated to the paper's Table III.

The paper measured five sensor configurations on two handsets with a
Monsoon power monitor over 10-minute sessions (screen off).  We replace
the physical monitor with an additive component model whose constants
are set from those measurements, so the benches reproduce the table and
the §IV-D claims (GPS ≈ 4× the app's draw; Goertzel saves ≈60 mW over
FFT).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.config import PowerConfig
from repro.util.rng import SeedLike, ensure_rng


class Sensor(Enum):
    """Individually powerable sensing components."""

    CELLULAR = "cellular"
    GPS = "gps"
    MIC_GOERTZEL = "mic_goertzel"
    MIC_FFT = "mic_fft"


class Handset(Enum):
    """The two handsets measured in Table III."""

    HTC_SENSATION = "htc"
    NEXUS_ONE = "nexus"


#: The sensor settings of Table III, in the paper's row order.
TABLE_III_SETTINGS: Tuple[Tuple[str, FrozenSet[Sensor]], ...] = (
    ("No sensors", frozenset()),
    ("Cellular 1Hz", frozenset({Sensor.CELLULAR})),
    ("GPS 0.5Hz", frozenset({Sensor.GPS})),
    ("Cellular+Mic(Goertzel)", frozenset({Sensor.CELLULAR, Sensor.MIC_GOERTZEL})),
    ("GPS+Mic(Goertzel)", frozenset({Sensor.GPS, Sensor.MIC_GOERTZEL})),
)


class PowerModel:
    """Additive component power model with measurement noise."""

    def __init__(self, config: Optional[PowerConfig] = None):
        self.config = config or PowerConfig()

    def baseline_mw(self, handset: Handset) -> float:
        """Idle draw (no sensors, screen off)."""
        if handset is Handset.HTC_SENSATION:
            return self.config.htc_baseline_mw
        return self.config.nexus_baseline_mw

    def component_mw(self, sensor: Sensor) -> float:
        """Marginal draw of one sensing component."""
        return {
            Sensor.CELLULAR: self.config.cellular_mw,
            Sensor.GPS: self.config.gps_mw,
            Sensor.MIC_GOERTZEL: self.config.mic_goertzel_mw,
            Sensor.MIC_FFT: self.config.mic_fft_mw,
        }[sensor]

    def mean_power_mw(self, handset: Handset, sensors: Iterable[Sensor]) -> float:
        """Mean draw of a configuration.

        GPS + microphone concurrently keeps the SoC from sleeping
        between fixes, adding a concurrency overhead — this is why the
        measured GPS+Mic rows exceed the sum of parts (Table III).
        """
        sensors = frozenset(sensors)
        power = self.baseline_mw(handset)
        for sensor in sensors:
            power += self.component_mw(sensor)
        if Sensor.GPS in sensors and (
            Sensor.MIC_GOERTZEL in sensors or Sensor.MIC_FFT in sensors
        ):
            power += self.config.gps_mic_overhead_mw
        return power

    def measure_session_mw(
        self,
        handset: Handset,
        sensors: Iterable[Sensor],
        duration_s: float = 600.0,
        rng: SeedLike = None,
    ) -> float:
        """One simulated Monsoon session: mean power with session noise."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = ensure_rng(rng)
        mean = self.mean_power_mw(handset, sensors)
        # Longer sessions average out more of the activity noise.
        rel_std = self.config.rel_std * (600.0 / duration_s) ** 0.5
        return float(mean * rng.lognormal(0.0, rel_std * 0.6))

    def session_energy_j(
        self, handset: Handset, sensors: Iterable[Sensor], duration_s: float
    ) -> float:
        """Energy of a session in joules (mean model, no noise)."""
        return self.mean_power_mw(handset, sensors) / 1000.0 * duration_s

    def goertzel_saving_mw(self) -> float:
        """Power saved by Goertzel over FFT beep detection (§IV-D: ≈60 mW)."""
        return self.component_mw(Sensor.MIC_FFT) - self.component_mw(Sensor.MIC_GOERTZEL)

    def table_iii(
        self, rng: SeedLike = None, sessions: int = 5
    ) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """Reproduce Table III: mean (and std) mW per setting per handset."""
        import numpy as np

        rng = ensure_rng(rng)
        table: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for label, sensors in TABLE_III_SETTINGS:
            row: Dict[str, Tuple[float, float]] = {}
            for handset in Handset:
                values = [
                    self.measure_session_mw(handset, sensors, rng=rng)
                    for _ in range(sessions)
                ]
                row[handset.value] = (float(np.mean(values)), float(np.std(values)))
            table[label] = row
        return table
