"""IC-card beep detection over a live audio stream.

Implements §III-B: the phone measures the normalised signal strength of
the beep frequency bands (1 kHz + 3 kHz in Singapore) over a sliding
window of w = 300 ms and confirms a beep when the band strength jumps
more than three standard deviations above its running noise statistics.
A refractory gap separates distinct beeps (boarding passengers tap one
after another).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.config import BeepConfig
from repro.phone.goertzel import band_powers, total_power


@dataclass(frozen=True)
class BeepEvent:
    """A detected beep: the time of its detection window."""

    time_s: float
    score: float                # jump size in noise standard deviations


class _RunningStats:
    """Welford running mean/variance of the noise-band ratio."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return float("inf")     # refuse to fire before stats settle
        return max((self._m2 / (self.count - 1)) ** 0.5, 1e-9)


class BeepDetector:
    """Sliding-window dual-tone beep detector.

    Feed audio with :meth:`process`; detected beeps are returned as
    :class:`BeepEvent` with absolute stream timestamps.  The detector is
    stateful so audio may arrive in chunks.
    """

    #: Window hop as a fraction of the window (2/3 overlap).
    HOP_FRACTION = 1.0 / 3.0
    #: Windows needed before detections may fire.
    WARMUP_WINDOWS = 6

    def __init__(self, config: Optional[BeepConfig] = None):
        self.config = config or BeepConfig()
        self._window = int(
            round(self.config.window_ms / 1000.0 * self.config.sample_rate_hz)
        )
        self._hop = max(1, int(self._window * self.HOP_FRACTION))
        self._buffer = np.empty(0)
        self._consumed_samples = 0      # samples already slid past
        self._stats = _RunningStats()
        self._last_beep_s = -float("inf")

    @property
    def window_samples(self) -> int:
        """Sliding window length in samples."""
        return self._window

    def process(self, chunk: np.ndarray) -> List[BeepEvent]:
        """Consume an audio chunk; return beeps detected within it."""
        chunk = np.asarray(chunk, dtype=float)
        if chunk.ndim != 1:
            raise ValueError("audio chunk must be one-dimensional")
        self._buffer = np.concatenate([self._buffer, chunk])
        events: List[BeepEvent] = []
        while len(self._buffer) >= self._window:
            window = self._buffer[: self._window]
            event = self._score_window(window)
            if event is not None:
                events.append(event)
            self._buffer = self._buffer[self._hop :]
            self._consumed_samples += self._hop
        return events

    def _score_window(self, window: np.ndarray) -> Optional[BeepEvent]:
        sr = self.config.sample_rate_hz
        band = float(
            np.sum(band_powers(window, sr, self.config.tone_frequencies_hz))
        )
        ratio = band / (total_power(window) + 1e-12)

        time_s = (self._consumed_samples + self._window) / sr
        warmed_up = self._stats.count >= self.WARMUP_WINDOWS
        jump = (ratio - self._stats.mean) / self._stats.std if warmed_up else 0.0

        # A real beep both jumps out of the noise statistics *and* carries a
        # non-trivial fraction of the window's energy in the tone bands —
        # the absolute floor keeps tiny noise wobbles from firing when the
        # running variance happens to be small.
        if (
            warmed_up
            and jump > self.config.jump_sigma
            and ratio >= self.config.min_band_ratio
        ):
            if time_s - self._last_beep_s >= self.config.min_gap_ms / 1000.0:
                self._last_beep_s = time_s
                return BeepEvent(time_s=time_s, score=float(jump))
            return None
        # Only non-beep windows update the noise statistics.
        self._stats.update(ratio)
        return None


def detect_beeps(
    audio: np.ndarray, config: Optional[BeepConfig] = None
) -> List[BeepEvent]:
    """One-shot beep detection over a whole buffer."""
    detector = BeepDetector(config)
    return detector.process(audio)
