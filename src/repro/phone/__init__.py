"""Phone-side sensing stack: beep DSP, motion filter, sampling, recording."""

from repro.phone.accel import TransitModeFilter, motion_variance
from repro.phone.app import DspMode, PhoneAgent, record_participant_trips
from repro.phone.beep import BeepDetector, BeepEvent, detect_beeps
from repro.phone.cellular import CellularSample, CellularSampler
from repro.phone.goertzel import (
    band_powers,
    fft_band_power,
    fft_op_count,
    goertzel_op_count,
    goertzel_power,
    goertzel_power_vectorized,
)
from repro.phone.power import Handset, PowerModel, Sensor, TABLE_III_SETTINGS
from repro.phone.trip_recorder import RecorderState, TripRecorder, TripUpload

__all__ = [
    "TransitModeFilter",
    "motion_variance",
    "DspMode",
    "PhoneAgent",
    "record_participant_trips",
    "BeepDetector",
    "BeepEvent",
    "detect_beeps",
    "CellularSample",
    "CellularSampler",
    "band_powers",
    "fft_band_power",
    "fft_op_count",
    "goertzel_op_count",
    "goertzel_power",
    "goertzel_power_vectorized",
    "Handset",
    "PowerModel",
    "Sensor",
    "TABLE_III_SETTINGS",
    "RecorderState",
    "TripRecorder",
    "TripUpload",
]
