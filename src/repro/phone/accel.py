"""Accelerometer-based transit-mode filter.

Rapid-train stations use the same IC-card readers as buses, so beep
detection alone would start bogus "bus" trips on trains.  The paper
filters these out by thresholding the acceleration variance: buses
accelerate, brake and turn frequently while trains ride smoothly
(§III-B).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import AccelConfig


def motion_variance(samples: np.ndarray, sample_rate_hz: float, window_s: float) -> float:
    """Mean windowed variance of an accelerometer magnitude trace.

    The trace is split into ``window_s`` windows and the variances are
    averaged, which is robust to slow drift over long rides.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("empty accelerometer trace")
    window = max(2, int(round(window_s * sample_rate_hz)))
    if samples.size <= window:
        return float(np.var(samples))
    n_windows = samples.size // window
    trimmed = samples[: n_windows * window].reshape(n_windows, window)
    return float(np.mean(np.var(trimmed, axis=1)))


class TransitModeFilter:
    """Classifies a ride as bus-like or train-like by motion variance."""

    def __init__(self, config: Optional[AccelConfig] = None):
        self.config = config or AccelConfig()

    def variance(self, samples: np.ndarray) -> float:
        """Windowed motion variance of the trace."""
        return motion_variance(
            samples, self.config.sample_rate_hz, self.config.window_s
        )

    def is_bus(self, samples: np.ndarray) -> bool:
        """True when the trace's variance exceeds the bus threshold."""
        return self.variance(samples) > self.config.variance_threshold
