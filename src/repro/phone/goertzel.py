"""Goertzel algorithm for single-frequency power extraction.

The paper detects IC-card beeps by watching the 1 kHz and 3 kHz bands
and uses the Goertzel algorithm instead of an FFT because only M target
frequencies are needed: complexity O(K_g·N·M) versus O(K_f·N·log N),
with a much smaller per-op constant — worth ≈60 mW on the phone
(§III-B, §IV-D).

Both the Goertzel extractor and the FFT-based equivalent are provided,
plus operation-count models used by the complexity/power ablation.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np


def goertzel_power(samples: np.ndarray, sample_rate_hz: float, freq_hz: float) -> float:
    """Normalised signal power at ``freq_hz`` via the Goertzel recurrence.

    Returns ``|X(k)|² / N²`` for the nearest DFT bin, comparable across
    window lengths.
    """
    samples = np.asarray(samples, dtype=float)
    n = len(samples)
    if n == 0:
        raise ValueError("empty sample window")
    if not (0.0 < freq_hz < sample_rate_hz / 2.0):
        raise ValueError("frequency must lie in (0, Nyquist)")
    k = int(round(n * freq_hz / sample_rate_hz))
    omega = 2.0 * math.pi * k / n
    coeff = 2.0 * math.cos(omega)
    s_prev = s_prev2 = 0.0
    for x in samples:
        s = x + coeff * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s
    power = s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2
    return float(power) / (n * n)


def goertzel_power_vectorized(
    samples: np.ndarray, sample_rate_hz: float, freq_hz: float
) -> float:
    """Same value as :func:`goertzel_power`, computed without the Python loop.

    Uses the DFT-bin identity |X(k)|²/N² directly; numerically equal to
    the recurrence and much faster for the simulator's bulk processing.
    """
    samples = np.asarray(samples, dtype=float)
    n = len(samples)
    if n == 0:
        raise ValueError("empty sample window")
    if not (0.0 < freq_hz < sample_rate_hz / 2.0):
        raise ValueError("frequency must lie in (0, Nyquist)")
    k = int(round(n * freq_hz / sample_rate_hz))
    angles = 2.0 * math.pi * k * np.arange(n) / n
    re = float(np.dot(samples, np.cos(angles)))
    im = float(np.dot(samples, np.sin(angles)))
    return (re * re + im * im) / (n * n)


def band_powers(
    samples: np.ndarray,
    sample_rate_hz: float,
    freqs_hz: Sequence[float],
    fast: bool = True,
) -> np.ndarray:
    """Powers at each target frequency (fast vectorised form by default)."""
    extractor = goertzel_power_vectorized if fast else goertzel_power
    return np.array([extractor(samples, sample_rate_hz, f) for f in freqs_hz])


def fft_band_power(samples: np.ndarray, sample_rate_hz: float, freq_hz: float) -> float:
    """FFT route to the same bin power (the paper's earlier approach [27])."""
    samples = np.asarray(samples, dtype=float)
    n = len(samples)
    if n == 0:
        raise ValueError("empty sample window")
    spectrum = np.fft.rfft(samples)
    k = int(round(n * freq_hz / sample_rate_hz))
    k = min(k, len(spectrum) - 1)
    return float(np.abs(spectrum[k]) ** 2) / (n * n)


def total_power(samples: np.ndarray) -> float:
    """Mean squared amplitude of the window."""
    samples = np.asarray(samples, dtype=float)
    if len(samples) == 0:
        raise ValueError("empty sample window")
    return float(np.mean(samples**2))


def goertzel_op_count(n: int, m: int, k_g: float = 1.0) -> float:
    """Operation-count model O(K_g·N·M) for M Goertzel frequencies."""
    if n < 0 or m < 0:
        raise ValueError("n and m must be non-negative")
    return k_g * n * m


def fft_op_count(n: int, k_f: float = 2.5) -> float:
    """Operation-count model O(K_f·N·log2 N) for a full FFT.

    ``K_f`` defaults above the Goertzel constant: the paper notes FFT
    code is "comparatively more complex" so K_f >> K_g (§IV-D).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return k_f * n * math.log2(n) if n > 1 else 0.0
