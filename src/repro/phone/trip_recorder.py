"""Trip lifecycle state machine on the phone.

§III-B: "Once detecting the beep, the mobile phone starts recording a
trip.  For each thereafter detected beep event, the mobile phone
attaches a timestamp and the set of visible cell tower signals. ...
The mobile phone concludes the current trip if no beep is detected for
10 minutes, and starts uploading another independent trip when new
beeps are thereafter detected."

The recorder also applies the accelerometer gate: the trip only starts
when the motion filter says the ride looks like a bus.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.config import TripRecorderConfig
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.phone.cellular import CellularSample
from repro.util.counters import PersistentCounter

_log = get_logger(__name__)


@dataclass(frozen=True)
class TripUpload:
    """One completed trip as uploaded (anonymously) to the backend."""

    trip_key: str
    samples: Tuple[CellularSample, ...]

    def __post_init__(self) -> None:
        times = [s.time_s for s in self.samples]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trip samples must be time-ordered")

    @property
    def start_s(self) -> float:
        """Time of the first sample."""
        if not self.samples:
            raise ValueError("empty trip")
        return self.samples[0].time_s

    @property
    def end_s(self) -> float:
        """Time of the last sample."""
        if not self.samples:
            raise ValueError("empty trip")
        return self.samples[-1].time_s


class RecorderState(Enum):
    """Lifecycle states of the recorder."""

    IDLE = "idle"
    RECORDING = "recording"


class TripRecorder:
    """Turns a stream of beep-triggered samples into discrete trips."""

    def __init__(
        self,
        config: Optional[TripRecorderConfig] = None,
        phone_id: str = "phone",
        *,
        registry: Optional[MetricsRegistry] = None,
        key_start: int = 0,
    ):
        self.config = config or TripRecorderConfig()
        self.phone_id = phone_id
        self.state = RecorderState.IDLE
        reg = registry if registry is not None else NULL_REGISTRY
        self._m_beeps = reg.counter(
            "recorder_beeps_total", help="beep events fed to recorders"
        )
        self._m_gated = reg.counter(
            "recorder_beeps_gated", help="beeps ignored by the accelerometer gate"
        )
        self._m_trips = reg.counter(
            "recorder_trips_concluded", help="trips concluded for upload"
        )
        self._samples: List[CellularSample] = []
        self._last_beep_s: Optional[float] = None
        self._completed: List[TripUpload] = []
        # Per-recorder, not process-global: trip keys must be a pure
        # function of (phone_id, trips concluded so far) so identically
        # seeded runs in one process produce identical keys.  Key
        # uniqueness across recorders comes from unique phone ids.  A
        # PersistentCounter (vs itertools.count) lets a restarted
        # process resume key numbering instead of colliding with trips
        # already in the server's durable duplicate ledger.
        self._keys = PersistentCounter(key_start)

    @property
    def key_counter(self) -> PersistentCounter:
        """The trip-key counter (snapshot ``.value`` / ``.reset`` it to
        survive a restart without reissuing keys)."""
        return self._keys

    # -- event feed ---------------------------------------------------------

    def on_beep(self, sample: CellularSample, looks_like_bus: bool = True) -> None:
        """A beep was detected and a cellular sample captured.

        ``looks_like_bus`` carries the accelerometer filter verdict; a
        train-like ride never opens a trip (§III-B).
        """
        self._check_clock(sample.time_s)
        self._maybe_timeout(sample.time_s)
        self._m_beeps.inc()
        if self.state is RecorderState.IDLE:
            if not looks_like_bus:
                self._m_gated.inc()
                return
            self.state = RecorderState.RECORDING
        self._samples.append(sample)
        self._last_beep_s = sample.time_s

    def on_tick(self, now_s: float) -> None:
        """Advance the clock (e.g. from a periodic alarm)."""
        self._check_clock(now_s)
        self._maybe_timeout(now_s)

    def drain_completed(self) -> List[TripUpload]:
        """Completed trips ready for upload (cleared on read)."""
        done = self._completed
        self._completed = []
        return done

    def flush(self, now_s: float) -> List[TripUpload]:
        """Force-conclude any open trip (e.g. app shutdown) and drain."""
        self._check_clock(now_s)
        self._conclude()
        return self.drain_completed()

    # -- internals ------------------------------------------------------------

    def _maybe_timeout(self, now_s: float) -> None:
        if (
            self.state is RecorderState.RECORDING
            and self._last_beep_s is not None
            and now_s - self._last_beep_s >= self.config.trip_timeout_s
        ):
            self._conclude()

    def _conclude(self) -> None:
        if self._samples:
            upload = TripUpload(
                trip_key=f"{self.phone_id}#{next(self._keys)}",
                samples=tuple(self._samples),
            )
            self._completed.append(upload)
            self._m_trips.inc()
            log_event(
                _log, "trip_concluded", level=logging.DEBUG,
                phone_id=self.phone_id, trip_key=upload.trip_key,
                samples=len(upload.samples),
            )
        self._samples = []
        self._last_beep_s = None
        self.state = RecorderState.IDLE

    def _check_clock(self, now_s: float) -> None:
        if self._last_beep_s is not None and now_s < self._last_beep_s:
            raise ValueError(
                f"time went backwards: {now_s:.1f} < {self._last_beep_s:.1f}"
            )
