"""The data-collection app: ties sensing, filtering and recording together.

A :class:`PhoneAgent` is one participant's phone riding one bus trip.
It hears the IC-card beeps of every boarding passenger while onboard,
captures a cellular sample per detected beep, gates the trip on the
accelerometer filter, and emits the anonymous :class:`TripUpload` the
backend consumes.

Two DSP fidelities are offered:

* ``FAST`` — beep detection outcome drawn from the configured
  end-to-end detection probability (used by the large campaign
  simulations; the probability itself is validated against FULL mode).
* ``FULL`` — synthesise actual cabin audio around every stop and run
  the Goertzel sliding-window detector on it, plus a synthetic
  accelerometer trace through the variance filter (used by tests,
  examples and the DSP benches).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

from repro.city.stops import StopRegistry
from repro.config import SystemConfig
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.phone.accel import TransitModeFilter
from repro.phone.beep import BeepDetector
from repro.phone.cellular import CellularSample, CellularSampler
from repro.phone.trip_recorder import TripRecorder, TripUpload
from repro.sim.audio import synthesize_cabin_audio, synthesize_motion
from repro.sim.bus import BusTripTrace, ParticipantRide, StopVisit
from repro.util.rng import SeedLike, ensure_rng


class DspMode(Enum):
    """Signal-processing fidelity of the agent."""

    FAST = "fast"
    FULL = "full"


#: Audio lead-in before the first tap of a stop so the detector's noise
#: statistics are warm (the detector needs ~0.8 s of ambience).
_AUDIO_LEAD_S = 1.5
_AUDIO_TAIL_S = 1.0

_log = get_logger(__name__)


class PhoneAgent:
    """One participant's phone during one bus ride."""

    def __init__(
        self,
        phone_id: str,
        sampler: CellularSampler,
        registry: StopRegistry,
        config: Optional[SystemConfig] = None,
        mode: DspMode = DspMode.FAST,
        rng: SeedLike = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.phone_id = phone_id
        self.sampler = sampler
        self.registry = registry
        self.config = config or SystemConfig()
        self.mode = mode
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._rng = ensure_rng(rng)

    def ride_and_record(
        self, trace: BusTripTrace, ride: ParticipantRide
    ) -> List[TripUpload]:
        """Ride the bus from boarding to alighting; return completed uploads."""
        recorder = TripRecorder(
            self.config.trip_recorder,
            phone_id=self.phone_id,
            registry=self.metrics,
        )
        looks_like_bus = self._motion_verdict()

        onboard_visits = [
            v
            for v in trace.visits
            if ride.board_order <= v.stop_order <= ride.alight_order and v.served
        ]
        for visit in onboard_visits:
            for sample in self._samples_at_stop(trace, visit, ride):
                recorder.on_beep(sample, looks_like_bus=looks_like_bus)
            self._maybe_false_sample(recorder, trace, visit, looks_like_bus)

        if onboard_visits:
            # Ride over: the 10-minute silence timeout concludes the trip.
            last = max(v.depart_s for v in onboard_visits)
            recorder.on_tick(last + self.config.trip_recorder.trip_timeout_s)
        uploads = recorder.drain_completed()
        self.metrics.counter(
            "phone_uploads_total", help="trips completed by phone agents"
        ).inc(len(uploads))
        log_event(
            _log, "ride_recorded", level=logging.DEBUG,
            phone_id=self.phone_id, uploads=len(uploads),
            samples=sum(len(u.samples) for u in uploads),
        )
        return uploads

    # -- sensing ---------------------------------------------------------------

    def _motion_verdict(self) -> bool:
        """Accelerometer gate: does this ride move like a bus?"""
        if self.mode is DspMode.FAST:
            return True
        trace = synthesize_motion("bus", 60.0, self.config.accel, self._rng)
        return TransitModeFilter(self.config.accel).is_bus(trace.samples)

    def _samples_at_stop(
        self, trace: BusTripTrace, visit: StopVisit, ride: ParticipantRide
    ) -> List[CellularSample]:
        taps = [t for t in trace.taps if t.stop_order == visit.stop_order]
        if not taps:
            return []
        platform = self.registry.platform(visit.stop_id)
        if self.mode is DspMode.FAST:
            detected_times = [
                tap.time_s
                for tap in taps
                if self._rng.random() < self.config.riders.beep_detect_probability
            ]
        else:
            detected_times = self._detect_with_dsp([t.time_s for t in taps])
        return [
            self.sampler.sample(
                platform.position.offset(
                    float(self._rng.normal(0.0, 2.0)),
                    float(self._rng.normal(0.0, 2.0)),
                ),
                time_s,
                self._rng,
            )
            for time_s in sorted(detected_times)
        ]

    def _detect_with_dsp(self, tap_times: Sequence[float]) -> List[float]:
        """FULL mode: synthesise cabin audio and run the Goertzel detector."""
        start = min(tap_times) - _AUDIO_LEAD_S
        duration = max(tap_times) - start + _AUDIO_TAIL_S
        audio = synthesize_cabin_audio(
            duration_s=duration,
            beep_times_s=[t - start for t in tap_times],
            config=self.config.beep,
            rng=self._rng,
        )
        events = BeepDetector(self.config.beep).process(audio)
        return [start + e.time_s for e in events]

    def _maybe_false_sample(
        self,
        recorder: TripRecorder,
        trace: BusTripTrace,
        visit: StopVisit,
        looks_like_bus: bool,
    ) -> None:
        """Occasionally a mid-road noise burst masquerades as a beep."""
        if self._rng.random() >= self.config.riders.false_sample_probability:
            return
        next_visits = [v for v in trace.visits if v.stop_order == visit.stop_order + 1]
        if not next_visits:
            return
        here = self.registry.station(visit.station_id).position
        there = self.registry.station(next_visits[0].station_id).position
        frac = float(self._rng.uniform(0.2, 0.8))
        where = here.offset((there.x - here.x) * frac, (there.y - here.y) * frac)
        when = visit.depart_s + frac * max(
            next_visits[0].arrival_s - visit.depart_s, 1.0
        )
        self.metrics.counter(
            "phone_false_samples_total", help="mid-road noise bursts taken as beeps"
        ).inc()
        recorder.on_beep(
            self.sampler.sample(where, when, self._rng),
            looks_like_bus=looks_like_bus,
        )


def record_participant_trips(
    trace: BusTripTrace,
    registry: StopRegistry,
    sampler: CellularSampler,
    config: Optional[SystemConfig] = None,
    mode: DspMode = DspMode.FAST,
    rng: SeedLike = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[TripUpload]:
    """Run a phone agent for every participant on a bus trip."""
    rng = ensure_rng(rng)
    config = config or SystemConfig()
    uploads: List[TripUpload] = []
    for ride in trace.participants:
        agent = PhoneAgent(
            phone_id=f"rider-{ride.rider_id}",
            sampler=sampler,
            registry=registry,
            config=config,
            mode=mode,
            rng=rng,
            metrics=metrics,
        )
        uploads.extend(agent.ride_and_record(trace, ride))
    return uploads
