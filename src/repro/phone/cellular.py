"""Phone-side cellular sampling: the data unit the system uploads.

A :class:`CellularSample` is what the phone attaches to every detected
beep: a timestamp plus the visible cell tower ids in descending-RSS
order (§III-B).  It is the *only* location-bearing datum that leaves
the phone — no GPS, no coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.city.geometry import Point
from repro.radio.scanner import CellularScanner, Observation
from repro.util.rng import SeedLike


@dataclass(frozen=True)
class CellularSample:
    """A timestamped cellular scan captured at a beep."""

    time_s: float
    tower_ids: Tuple[int, ...]
    rss_dbm: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.rss_dbm and len(self.rss_dbm) != len(self.tower_ids):
            raise ValueError("rss_dbm length must match tower_ids")

    def __len__(self) -> int:
        return len(self.tower_ids)

    @classmethod
    def from_observation(cls, time_s: float, observation: Observation) -> "CellularSample":
        """Wrap a radio-layer observation with its capture time."""
        return cls(
            time_s=time_s,
            tower_ids=observation.tower_ids,
            rss_dbm=observation.rss_dbm,
        )


class CellularSampler:
    """Thin phone-side wrapper over the modem's neighbour-cell list."""

    def __init__(self, scanner: CellularScanner):
        self._scanner = scanner

    def sample(self, where: Point, time_s: float, rng: SeedLike = None) -> CellularSample:
        """Capture one cellular sample at the phone's physical location."""
        return CellularSample.from_observation(time_s, self._scanner.scan(where, rng))
