"""Command-line interface: operate the system without writing code.

Subcommands mirror a real deployment's workflow::

    repro build-city  --out feed/           # publish the GTFS-like feed
    repro survey      --out db.json         # war-drive the fingerprint DB
    repro simulate    --start 07:30 --end 10:00 --out map.geojson
    repro process     --db db.json --trips trips.jsonl   # offline reprocessing
    repro power                              # Table III on stdout
    repro stats       metrics.json           # render a --metrics-out document

Every command is deterministic given ``--seed``.

Observability: the global ``--log-level``/``--log-json`` flags configure
structured logging for any command, and ``simulate``/``process`` accept
``--metrics-out FILE`` to dump pipeline counters, histograms and
per-stage span timings (JSON, or Prometheus text when FILE ends in
``.prom``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Participatory bus-probe urban traffic monitoring "
                    "(ICDCS'15 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error", "critical"],
        help="structured-log verbosity (default: warning)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit logs as JSON Lines instead of key=value",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build-city", help="generate the synthetic city feed")
    build.add_argument("--out", required=True, help="output GTFS directory")
    build.add_argument("--seed", type=int, default=7)

    survey = sub.add_parser("survey", help="survey the bus-stop fingerprint DB")
    survey.add_argument("--out", required=True, help="output database JSON path")
    survey.add_argument("--seed", type=int, default=7)
    survey.add_argument("--samples-per-stop", type=int, default=5)

    simulate = sub.add_parser("simulate", help="run a sensing campaign")
    simulate.add_argument("--start", default="07:30")
    simulate.add_argument("--end", default="10:00")
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--headway", type=float, default=None,
                          help="dispatch headway in seconds")
    simulate.add_argument("--routes", nargs="*", default=None,
                          help="route ids (default: all)")
    simulate.add_argument("--out", default=None,
                          help="write the final map snapshot as GeoJSON")
    simulate.add_argument("--trips-out", default=None,
                          help="also dump raw uploads as JSON Lines")
    simulate.add_argument("--metrics-out", default=None,
                          help="dump pipeline metrics + per-stage timings "
                               "(JSON, or Prometheus text for *.prom)")

    process = sub.add_parser("process", help="re-run the backend on stored trips")
    process.add_argument("--db", required=True, help="fingerprint database JSON")
    process.add_argument("--trips", required=True, help="uploads JSON Lines file")
    process.add_argument("--seed", type=int, default=7,
                         help="seed of the city the trips came from")
    process.add_argument("--metrics-out", default=None,
                         help="dump pipeline metrics + per-stage timings "
                              "(JSON, or Prometheus text for *.prom)")

    campaign = sub.add_parser(
        "campaign", help="run a multi-day sparse+intensive campaign"
    )
    campaign.add_argument("--sparse-days", type=int, default=2)
    campaign.add_argument("--intensive-days", type=int, default=2)
    campaign.add_argument("--sparse-rate", type=float, default=0.03)
    campaign.add_argument("--intensive-rate", type=float, default=0.25)
    campaign.add_argument("--start", default="07:30")
    campaign.add_argument("--end", default="09:30")
    campaign.add_argument("--seed", type=int, default=7)

    sub.add_parser("power", help="print the Table III power model")

    stats = sub.add_parser(
        "stats", help="render a --metrics-out document as a report"
    )
    stats.add_argument("metrics", help="metrics JSON written by --metrics-out")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.obs import configure as configure_logging

    configure_logging(level=args.log_level, json=args.log_json)
    handler = {
        "build-city": _cmd_build_city,
        "survey": _cmd_survey,
        "simulate": _cmd_simulate,
        "process": _cmd_process,
        "campaign": _cmd_campaign,
        "power": _cmd_power,
        "stats": _cmd_stats,
    }[args.command]
    return handler(args)


def _observability_for(metrics_out: Optional[str]):
    """A (registry, tracer) pair: recording when metrics are requested."""
    from repro.obs import MetricsRegistry, NULL_TRACER, Tracer

    if metrics_out:
        return MetricsRegistry(), Tracer()
    return MetricsRegistry(), NULL_TRACER


def _write_metrics(path: str, command: str, server, registry, tracer) -> None:
    """Dump the pipeline's metrics document (JSON or Prometheus text)."""
    if path.endswith(".prom"):
        with open(path, "w", encoding="utf-8") as out:
            out.write(registry.render_prometheus())
    else:
        document = {
            "command": command,
            "stats": server.stats.as_dict(),
            "stages": tracer.stage_stats(),
            "metrics": registry.as_dict(),
        }
        with open(path, "w", encoding="utf-8") as out:
            json.dump(document, out, indent=2)
    print(f"wrote pipeline metrics -> {path}")


def _cmd_build_city(args: argparse.Namespace) -> int:
    from repro.city import CitySpec, build_city
    from repro.city.gtfs import export_city

    city = build_city(CitySpec(seed=args.seed))
    export_city(city, args.out)
    print(f"wrote GTFS feed to {args.out}: "
          f"{len(city.registry.stations)} stations, "
          f"{len(city.route_network.routes)} directed routes, "
          f"{100 * city.route_coverage_ratio():.0f}% road coverage")
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.sim.world import World
    from repro.wire import save_database

    world = World(seed=args.seed, survey_samples_per_stop=args.samples_per_stop)
    save_database(world.database, args.out)
    print(f"surveyed {len(world.database)} stop fingerprints -> {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.world import World
    from repro.util.units import parse_hhmm
    from repro.wire import dump_trips, snapshot_to_geojson

    registry, tracer = _observability_for(args.metrics_out)
    world = World(seed=args.seed, registry=registry, tracer=tracer)
    result = world.run(
        parse_hhmm(args.start),
        parse_hhmm(args.end),
        route_ids=args.routes,
        headway_s=args.headway,
        with_official_feed=False,
    )
    stats = world.server.stats
    snapshot = world.server.traffic_map.published_snapshot(parse_hhmm(args.end))
    print(f"campaign {args.start}-{args.end}: {len(result.traces)} bus trips, "
          f"{stats.trips_received} uploads, {stats.trips_mapped} mapped")
    print(f"map: {100 * snapshot.coverage:.0f}% coverage, "
          f"mean {snapshot.mean_speed_kmh():.1f} km/h")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            json.dump(snapshot_to_geojson(snapshot, world.city.network), out)
        print(f"wrote map snapshot -> {args.out}")
    if args.trips_out:
        with open(args.trips_out, "w", encoding="utf-8") as out:
            dump_trips(result.uploads, out)
        print(f"wrote {len(result.uploads)} uploads -> {args.trips_out}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, "simulate", world.server, registry, tracer)
    return 0


def _cmd_process(args: argparse.Namespace) -> int:
    from repro.core import BackendServer
    from repro.sim.world import World
    from repro.wire import load_database, load_trips

    database = load_database(args.db)
    with open(args.trips, encoding="utf-8") as handle:
        uploads = load_trips(handle)
    registry, tracer = _observability_for(args.metrics_out)
    world = World(seed=args.seed)
    server = BackendServer(
        world.city.network, world.city.route_network, database, world.config,
        registry=registry, tracer=tracer,
    )
    server.receive_trips(uploads)
    stats = server.stats
    # Duplicate uploads never count into samples_received, so report their
    # samples separately instead of printing discarded > received.
    discarded = stats.samples_discarded - stats.samples_duplicate
    dup_note = (
        f", {stats.trips_duplicate} duplicate trips dropped"
        if stats.trips_duplicate else ""
    )
    print(f"processed {stats.trips_received} trips: {stats.trips_mapped} mapped, "
          f"{discarded}/{stats.samples_received} samples discarded, "
          f"{stats.segments_updated} segment updates{dup_note}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, "process", server, registry, tracer)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.eval.reporting import render_table

    with open(args.metrics, encoding="utf-8") as handle:
        document = json.load(handle)

    sections: List[str] = []
    stats = document.get("stats", {})
    if stats:
        sections.append(render_table(
            ["counter", "value"],
            [[name, value] for name, value in stats.items()],
            title=f"Server pipeline counters ({document.get('command', '?')})",
        ))

    stages = document.get("stages", {})
    if stages:
        rows = []
        for name, timing in sorted(
            stages.items(), key=lambda kv: -kv[1].get("total_s", 0.0)
        ):
            rows.append([
                name,
                timing.get("count", 0),
                f"{1e3 * timing.get('total_s', 0.0):.1f}",
                f"{1e3 * timing.get('mean_s', 0.0):.3f}",
                f"{1e3 * timing.get('max_s', 0.0):.3f}",
            ])
        sections.append(render_table(
            ["stage", "count", "total (ms)", "mean (ms)", "max (ms)"],
            rows,
            title="Per-stage span timings",
        ))

    metrics = document.get("metrics", {})
    extra_counters = {
        name: value
        for name, value in metrics.get("counters", {}).items()
        if name.replace("server_", "") not in stats
    }
    if extra_counters:
        sections.append(render_table(
            ["metric", "value"],
            [[name, value] for name, value in extra_counters.items()],
            title="Other counters",
        ))
    histograms = metrics.get("histograms", {})
    if histograms:
        rows = []
        for name, data in histograms.items():
            count = data.get("count", 0)
            mean = data.get("sum", 0.0) / count if count else 0.0
            rows.append([name, count, f"{mean:.2f}"])
        sections.append(render_table(
            ["histogram", "observations", "mean"],
            rows,
            title="Histograms",
        ))

    if not sections:
        print("metrics document is empty", file=sys.stderr)
        return 2
    print("\n\n".join(sections))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.sim.campaign import Campaign, CampaignPhase
    from repro.sim.world import World

    world = World(seed=args.seed)
    campaign = Campaign(world, start=args.start, end=args.end)
    phases = []
    if args.sparse_days > 0:
        phases.append(
            CampaignPhase("sparse", args.sparse_days, args.sparse_rate)
        )
    if args.intensive_days > 0:
        phases.append(
            CampaignPhase("intensive", args.intensive_days, args.intensive_rate)
        )
    if not phases:
        print("nothing to run: both phases have zero days", file=sys.stderr)
        return 2
    result = campaign.run(phases)
    print(f"{'day':<5} {'phase':<10} {'bus trips':>9} {'uploads':>8} "
          f"{'mapped':>7} {'coverage':>9}")
    for day in result.days:
        print(f"{day.day_index:<5} {day.phase:<10} {day.bus_trips:>9} "
              f"{day.uploads:>8} {day.trips_mapped:>7} "
              f"{100 * day.map_coverage:>8.0f}%")
    for phase in {p.name for p in phases}:
        print(f"mean uploads/day in {phase}: "
              f"{result.uploads_per_day(phase):.0f}")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.phone.power import PowerModel, TABLE_III_SETTINGS

    model = PowerModel()
    table = model.table_iii(rng=0, sessions=5)
    print(f"{'sensor setting':<26} {'HTC (mW)':>10} {'Nexus (mW)':>11}")
    for label, _ in TABLE_III_SETTINGS:
        htc, _ = table[label]["htc"]
        nexus, _ = table[label]["nexus"]
        print(f"{label:<26} {htc:>10.0f} {nexus:>11.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
