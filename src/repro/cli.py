"""Command-line interface: operate the system without writing code.

Subcommands mirror a real deployment's workflow::

    repro build-city  --out feed/           # publish the GTFS-like feed
    repro survey      --out db.json         # war-drive the fingerprint DB
    repro simulate    --start 07:30 --end 10:00 --out map.geojson
    repro process     --db db.json --trips trips.jsonl   # offline reprocessing
    repro power                              # Table III on stdout
    repro stats       metrics.json           # render a --metrics-out document
    repro alerts      rules.json --metrics m.json   # lint + evaluate SLO rules
    repro analytics   --end 09:00            # fleet-health report (headways,
                                             # ghost buses, O-D flows)
    repro conformance --scenarios 25         # oracles + golden-trace referee

Every command is deterministic given ``--seed``.

Observability: the global ``--log-level``/``--log-json`` flags configure
structured logging for any command; ``simulate``/``process``/``campaign``
accept ``--metrics-out FILE`` to dump pipeline counters, histograms and
per-stage span timings (JSON, or Prometheus text when FILE ends in
``.prom``); ``repro stats`` renders either format back.  ``repro
simulate --serve-metrics PORT`` runs an embedded HTTP exporter
(``/metrics``, ``/healthz``, ``/stats``, ``/freshness``, ``/fleet``,
``/trace``) next to the campaign, and ``--alert-rules FILE`` evaluates
declarative SLO rules on every publish tick.

Tracing: ``simulate``/``campaign`` accept ``--trace-out FILE`` to retain
causal span records (head sampling via ``--trace-sample``, slowest-N
tail exemplars via ``--trace-exemplars``) and export them as Chrome
trace-event JSON — load the file in Perfetto or ``chrome://tracing``,
or run ``repro trace FILE`` for a terminal IPC-vs-compute breakdown.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Participatory bus-probe urban traffic monitoring "
                    "(ICDCS'15 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error", "critical"],
        help="structured-log verbosity (default: warning)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit logs as JSON Lines instead of key=value",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build-city", help="generate the synthetic city feed")
    build.add_argument("--out", required=True, help="output GTFS directory")
    build.add_argument("--seed", type=int, default=7)

    survey = sub.add_parser("survey", help="survey the bus-stop fingerprint DB")
    survey.add_argument("--out", required=True, help="output database JSON path")
    survey.add_argument("--seed", type=int, default=7)
    survey.add_argument("--samples-per-stop", type=int, default=5)

    simulate = sub.add_parser("simulate", help="run a sensing campaign")
    simulate.add_argument("--start", default="07:30")
    simulate.add_argument("--end", default="10:00")
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--headway", type=float, default=None,
                          help="dispatch headway in seconds")
    simulate.add_argument("--routes", nargs="*", default=None,
                          help="route ids (default: all)")
    simulate.add_argument("--workers", type=int, default=1,
                          help="worker processes for the match/cluster/map "
                               "stages (default: 1 = serial; results are "
                               "identical at any count)")
    simulate.add_argument("--out", default=None,
                          help="write the final map snapshot as GeoJSON")
    simulate.add_argument("--trips-out", default=None,
                          help="also dump raw uploads as JSON Lines")
    simulate.add_argument("--metrics-out", default=None,
                          help="dump pipeline metrics + per-stage timings "
                               "(JSON, or Prometheus text for *.prom)")
    simulate.add_argument("--serve-metrics", type=int, default=None,
                          metavar="PORT",
                          help="serve /metrics, /healthz, /stats and "
                               "/freshness over HTTP while the campaign "
                               "runs (0 picks an ephemeral port)")
    simulate.add_argument("--serve-hold", type=float, default=0.0,
                          metavar="SECONDS",
                          help="keep the exporter up this long after the "
                               "run so it can be scraped (default: 0)")
    simulate.add_argument("--alert-rules", default=None, metavar="FILE",
                          help="evaluate this JSON SLO rule file on every "
                               "publish tick")
    _add_ingest_flags(simulate)
    _add_trace_flags(simulate)

    process = sub.add_parser("process", help="re-run the backend on stored trips")
    process.add_argument("--db", required=True, help="fingerprint database JSON")
    process.add_argument("--trips", required=True, help="uploads JSON Lines file")
    process.add_argument("--seed", type=int, default=7,
                         help="seed of the city the trips came from")
    process.add_argument("--metrics-out", default=None,
                         help="dump pipeline metrics + per-stage timings "
                              "(JSON, or Prometheus text for *.prom)")

    campaign = sub.add_parser(
        "campaign", help="run a multi-day sparse+intensive campaign"
    )
    campaign.add_argument("--sparse-days", type=int, default=2)
    campaign.add_argument("--intensive-days", type=int, default=2)
    campaign.add_argument("--sparse-rate", type=float, default=0.03)
    campaign.add_argument("--intensive-rate", type=float, default=0.25)
    campaign.add_argument("--start", default="07:30")
    campaign.add_argument("--end", default="09:30")
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes for the match/cluster/map "
                               "stages (default: 1 = serial; results are "
                               "identical at any count)")
    campaign.add_argument("--metrics-out", default=None,
                          help="dump pipeline metrics + per-stage timings "
                               "(JSON, or Prometheus text for *.prom)")
    campaign.add_argument("--headway", type=float, default=None,
                          metavar="SECONDS",
                          help="dispatch headway override (default: config)")
    campaign.add_argument("--store", default=None, metavar="PATH",
                          help="durable state store: journal every upload "
                               "to a write-ahead ledger and snapshot the "
                               "backend, so a killed campaign can be "
                               "resumed (directory = append-log backend, "
                               "*.db/*.sqlite = sqlite, ':memory:' = "
                               "in-process)")
    campaign.add_argument("--store-backend", default=None,
                          choices=["memory", "sqlite", "appendlog"],
                          help="force the store backend instead of "
                               "inferring it from the path")
    campaign.add_argument("--resume", action="store_true",
                          help="recover state from --store (snapshot + WAL "
                               "replay) and continue the campaign where a "
                               "previous process stopped")
    campaign.add_argument("--snapshot-every", type=int, default=None,
                          metavar="N",
                          help="snapshot cadence in WAL records, checked at "
                               "day boundaries (default: config; 0 disables "
                               "automatic snapshots)")
    campaign.add_argument("--fsync", default=None,
                          choices=["always", "batch", "never"],
                          help="store fsync policy (default: config "
                               "'batch')")
    campaign.add_argument("--golden-out", default=None, metavar="FILE",
                          help="write the canonical golden trace of the "
                               "final backend state (crash-recovery tests "
                               "diff this byte-for-byte)")
    campaign.add_argument("--alert-rules", default=None, metavar="FILE",
                          help="evaluate this JSON SLO rule file on every "
                               "publish tick")
    _add_ingest_flags(campaign)
    _add_trace_flags(campaign)

    sub.add_parser("power", help="print the Table III power model")

    stats = sub.add_parser(
        "stats", help="render a --metrics-out document as a report"
    )
    stats.add_argument("metrics",
                       help="metrics document written by --metrics-out "
                            "(JSON, or Prometheus text for *.prom)")
    stats.add_argument("--slow-trip-ms", type=float, default=None,
                       metavar="MS",
                       help="print a tracing hint when a slow-trip exemplar "
                            "exceeds this duration (default: config)")

    alerts = sub.add_parser(
        "alerts", help="lint an SLO rule file; evaluate it against metrics"
    )
    alerts.add_argument("rules", help="JSON alert-rule file")
    alerts.add_argument("--metrics", default=None,
                        help="evaluate the rules against this --metrics-out "
                             "document (JSON or *.prom); exit 1 if any fire")
    alerts.add_argument("--slow-trip-ms", type=float, default=None,
                        metavar="MS",
                        help="print a tracing hint when a slow-trip exemplar "
                             "in the metrics document exceeds this duration "
                             "(default: config)")

    trace = sub.add_parser(
        "trace",
        help="summarize / validate a --trace-out Chrome trace-event file",
    )
    trace.add_argument("trace", help="trace JSON written by --trace-out "
                                     "(or fetched from /trace)")
    trace.add_argument("--summary", action="store_true",
                       help="print the IPC-vs-compute breakdown (the "
                            "default output; kept explicit for scripts)")
    trace.add_argument("--validate", action="store_true",
                       help="only check the trace-event schema; exit 1 on "
                            "problems, print nothing else")
    trace.add_argument("--top", type=int, default=5,
                       help="slowest keyed spans shown (default: 5)")

    analytics = sub.add_parser(
        "analytics",
        help="fleet-health report: headways/bunching/EWT, ghost buses, "
             "O-D flows",
    )
    analytics.add_argument("--metrics", default=None, metavar="FILE",
                           help="render from a saved --metrics-out document "
                                "(JSON or *.prom) instead of running a "
                                "campaign")
    analytics.add_argument("--start", default="07:30")
    analytics.add_argument("--end", default="09:30")
    analytics.add_argument("--seed", type=int, default=7)
    analytics.add_argument("--headway", type=float, default=None,
                           help="dispatch headway in seconds")
    analytics.add_argument("--routes", nargs="*", default=None,
                           help="route ids (default: all)")
    analytics.add_argument("--workers", type=int, default=1,
                           help="worker processes for the match/cluster/map "
                                "stages")
    analytics.add_argument("--top-flows", type=int, default=10,
                           help="O-D pairs shown in the flow table "
                                "(default: 10)")
    analytics.add_argument("--json-out", default=None, metavar="FILE",
                           help="also write the fleet-health report as JSON")

    conformance = sub.add_parser(
        "conformance",
        help="differentially test core/ vs the spec-literal oracles and "
             "check (or re-record) the golden end-to-end trace",
    )
    conformance.add_argument("--scenarios", type=int, default=25,
                             help="randomized scenarios per estimator "
                                  "(default: 25)")
    conformance.add_argument("--seed", type=int, default=0,
                             help="base seed for scenario generation")
    conformance.add_argument("--record", action="store_true",
                             help="re-record the golden fixture (after "
                                  "verifying worker-invariance) instead of "
                                  "checking against it")
    conformance.add_argument("--check", action="store_true",
                             help="check the golden trace (the default; "
                                  "kept explicit for scripts)")
    conformance.add_argument("--no-golden", action="store_true",
                             help="differential scenarios only, skip the "
                                  "golden end-to-end runs")
    conformance.add_argument("--matcher", choices=["indexed", "full"],
                             default="indexed",
                             help="matching path to test differentially: "
                                  "candidate-pruned + memoized (indexed, "
                                  "the production default) or the "
                                  "whole-database scan (full); both must "
                                  "emit identical reports")
    conformance.add_argument("--workers", type=int, nargs="*", default=None,
                             help="worker counts the golden campaign is "
                                  "replayed at (default: 1 2 4)")
    conformance.add_argument("--fixture", default=None,
                             help="golden trace path (default: the committed "
                                  "tests/golden/campaign_small.json)")
    conformance.add_argument("--diff-out", default=None, metavar="FILE",
                             help="write golden-trace diff lines here on "
                                  "mismatch (CI artifact)")
    conformance.add_argument("--report-out", default=None, metavar="FILE",
                             help="write the full conformance report as JSON")
    return parser


def _add_ingest_flags(command: argparse.ArgumentParser) -> None:
    """Parallel-ingest IPC flags shared by ``simulate`` and ``campaign``."""
    command.add_argument("--legacy-ipc", action="store_true",
                         help="broadcast worker state as per-worker pickles "
                              "and ship shards as raw pickle instead of the "
                              "zero-copy shared-memory store + columnar "
                              "codec (the A/B baseline; results are "
                              "identical either way)")
    command.add_argument("--memo-warm", type=int, default=None, metavar="N",
                         help="pre-warm each ingest worker's verdict memo "
                              "with the coordinator's N hottest entries "
                              "(default: config; 0 disables)")


def _ingest_config(args: argparse.Namespace):
    """A SystemConfig honouring the parallel-ingest IPC flags."""
    from dataclasses import replace

    from repro.config import SystemConfig

    config = SystemConfig()
    ingest = config.ingest
    if getattr(args, "legacy_ipc", False):
        ingest = replace(ingest, shared_store=False)
    if getattr(args, "memo_warm", None) is not None:
        ingest = replace(ingest, memo_warm=args.memo_warm)
    if getattr(args, "snapshot_every", None) is not None:
        ingest = replace(ingest, store_snapshot_every=args.snapshot_every)
    if getattr(args, "fsync", None) is not None:
        ingest = replace(ingest, store_fsync=args.fsync)
    if ingest is not config.ingest:
        config = replace(config, ingest=ingest)
    return config


def _add_trace_flags(command: argparse.ArgumentParser) -> None:
    """Span-retention flags shared by ``simulate`` and ``campaign``."""
    command.add_argument("--trace-out", default=None, metavar="FILE",
                         help="retain span records and write them as Chrome "
                              "trace-event JSON (load in Perfetto / "
                              "chrome://tracing, or `repro trace FILE`)")
    command.add_argument("--trace-sample", type=float, default=None,
                         metavar="RATE",
                         help="head-sampling rate for per-trip spans, 0..1 "
                              "(default: config; deterministic per trip key)")
    command.add_argument("--trace-exemplars", type=int, default=None,
                         metavar="N",
                         help="always keep the N slowest trips regardless "
                              "of sampling (default: config)")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    from repro.obs import configure as configure_logging

    configure_logging(level=args.log_level, json=args.log_json)
    handler = {
        "build-city": _cmd_build_city,
        "survey": _cmd_survey,
        "simulate": _cmd_simulate,
        "process": _cmd_process,
        "campaign": _cmd_campaign,
        "power": _cmd_power,
        "stats": _cmd_stats,
        "alerts": _cmd_alerts,
        "analytics": _cmd_analytics,
        "conformance": _cmd_conformance,
        "trace": _cmd_trace,
    }[args.command]
    return handler(args)


def _observability_for(tracing: bool, policy=None):
    """A (registry, tracer) pair: the tracer records when asked to.

    With a :class:`~repro.obs.tracing.SamplingPolicy` the tracer also
    retains span records for Chrome trace-event export; with plain
    ``tracing=True`` it aggregates per-stage timings only; otherwise the
    no-op :data:`NULL_TRACER` keeps the hot path free.
    """
    from repro.obs import MetricsRegistry, NULL_TRACER, Tracer

    if policy is not None:
        return MetricsRegistry(), Tracer(policy)
    if tracing:
        return MetricsRegistry(), Tracer()
    return MetricsRegistry(), NULL_TRACER


def _trace_policy(args) -> Optional[object]:
    """The SamplingPolicy for this run, or None when retention is off."""
    from repro.config import DEFAULT_CONFIG

    defaults = DEFAULT_CONFIG.tracing
    if not getattr(args, "trace_out", None) and not defaults.enabled:
        return None
    from repro.obs import SamplingPolicy

    return SamplingPolicy(
        head_rate=(
            args.trace_sample if args.trace_sample is not None
            else defaults.head_sample_rate
        ),
        slow_exemplars=(
            args.trace_exemplars if args.trace_exemplars is not None
            else defaults.slow_exemplars
        ),
        seed=defaults.sample_seed,
        max_spans_per_trace=defaults.max_spans_per_trace,
        max_records=defaults.max_records,
    )


def _write_trace(path: str, tracer) -> None:
    """Dump the retained spans as a Chrome trace-event JSON file."""
    document = tracer.chrome_trace()
    with open(path, "w", encoding="utf-8") as out:
        json.dump(document, out)
    events = len(document.get("traceEvents", []))
    dropped = getattr(tracer, "records_dropped", 0)
    dropped_note = f" ({dropped} dropped by caps)" if dropped else ""
    print(f"wrote {events} trace events -> {path}{dropped_note}")
    print(f"  view: load {path} in Perfetto (ui.perfetto.dev) or "
          f"chrome://tracing; summarize: repro trace {path}")


def _alert_engine_for(path: Optional[str], registry, server):
    """Load a rule file and attach an engine to the server (or exit)."""
    if not path:
        return None
    from repro.obs import AlertEngine, load_rules

    try:
        rules = load_rules(path)
    except (OSError, ValueError) as exc:
        print(f"alert rules: {exc}", file=sys.stderr)
        raise SystemExit(2)
    engine = AlertEngine(rules, registry=registry)
    server.attach_alerts(engine)
    return engine


def _print_alert_status(engine) -> None:
    """One line per standing alert after a run (or an all-clear)."""
    if engine is None:
        return
    active = engine.active
    if not active:
        print("alerts: none active at end of run")
        return
    print(f"alerts: {len(active)} active at end of run")
    for event in active:
        labels = ",".join(f"{k}={v}" for k, v in event.labels)
        where = f"{{{labels}}}" if labels else ""
        print(f"  [{event.severity}] {event.rule}{where} "
              f"value={event.value:g} threshold={event.threshold:g}")


def _write_metrics(path: str, command: str, server, registry, tracer) -> None:
    """Dump the pipeline's metrics document (JSON or Prometheus text)."""
    if path.endswith(".prom"):
        with open(path, "w", encoding="utf-8") as out:
            out.write(registry.render_prometheus())
    else:
        document = {
            "command": command,
            "stats": server.stats.as_dict(),
            "stages": tracer.stage_stats(),
            # Denominator for the stats "% of wall" column: wall seconds
            # under the tracer's top-level spans.  0.0 when untraced.
            "wall_s": getattr(tracer, "wall_s", 0.0),
            "metrics": registry.as_dict(),
        }
        exemplars = tracer.exemplar_summaries()
        if exemplars:
            document["exemplars"] = exemplars
        with open(path, "w", encoding="utf-8") as out:
            json.dump(document, out, indent=2)
    print(f"wrote pipeline metrics -> {path}")


def _cmd_build_city(args: argparse.Namespace) -> int:
    from repro.city import CitySpec, build_city
    from repro.city.gtfs import export_city

    city = build_city(CitySpec(seed=args.seed))
    export_city(city, args.out)
    print(f"wrote GTFS feed to {args.out}: "
          f"{len(city.registry.stations)} stations, "
          f"{len(city.route_network.routes)} directed routes, "
          f"{100 * city.route_coverage_ratio():.0f}% road coverage")
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.sim.world import World
    from repro.wire import save_database

    world = World(seed=args.seed, survey_samples_per_stop=args.samples_per_stop)
    save_database(world.database, args.out)
    print(f"surveyed {len(world.database)} stop fingerprints -> {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.world import World
    from repro.util.units import parse_hhmm
    from repro.wire import dump_trips, snapshot_to_geojson

    registry, tracer = _observability_for(
        bool(args.metrics_out) or args.serve_metrics is not None,
        policy=_trace_policy(args),
    )
    world = World(seed=args.seed, config=_ingest_config(args),
                  registry=registry, tracer=tracer)
    server = world.server
    engine = _alert_engine_for(args.alert_rules, registry, server)

    exporter = None
    if args.serve_metrics is not None:
        from repro.obs import MetricsHTTPServer

        exporter = MetricsHTTPServer(
            registry,
            port=args.serve_metrics,
            stats_fn=lambda: {
                "command": "simulate",
                "stats": server.stats.as_dict(),
                "stages": tracer.stage_stats(),
            },
            freshness_fn=server.freshness.report,
            health_fn=lambda: {"trips_received": server.stats.trips_received},
            fleet_fn=(
                server.analytics.report
                if server.analytics is not None else None
            ),
            trace_fn=(
                tracer.chrome_trace
                if getattr(tracer, "retaining", False) else None
            ),
        )
        port = exporter.start()
        print(f"serving metrics on http://127.0.0.1:{port}/metrics")
    try:
        result = world.run(
            parse_hhmm(args.start),
            parse_hhmm(args.end),
            route_ids=args.routes,
            headway_s=args.headway,
            with_official_feed=False,
            workers=args.workers,
        )
        stats = world.server.stats
        snapshot = server.traffic_map.published_snapshot(parse_hhmm(args.end))
        print(f"campaign {args.start}-{args.end}: {len(result.traces)} "
              f"bus trips, {stats.trips_received} uploads, "
              f"{stats.trips_mapped} mapped")
        print(f"map: {100 * snapshot.coverage:.0f}% coverage, "
              f"mean {snapshot.mean_speed_kmh():.1f} km/h")
        _print_alert_status(engine)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as out:
                json.dump(snapshot_to_geojson(snapshot, world.city.network), out)
            print(f"wrote map snapshot -> {args.out}")
        if args.trips_out:
            with open(args.trips_out, "w", encoding="utf-8") as out:
                dump_trips(result.uploads, out)
            print(f"wrote {len(result.uploads)} uploads -> {args.trips_out}")
        if args.metrics_out:
            _write_metrics(args.metrics_out, "simulate", server, registry, tracer)
        if args.trace_out:
            _write_trace(args.trace_out, tracer)
        if exporter is not None and args.serve_hold > 0:
            import time

            print(f"holding exporter open for {args.serve_hold:g}s "
                  f"(ctrl-c to stop early)")
            try:
                time.sleep(args.serve_hold)
            except KeyboardInterrupt:
                pass
    finally:
        if exporter is not None:
            exporter.stop()
    return 0


def _cmd_process(args: argparse.Namespace) -> int:
    from repro.core import BackendServer
    from repro.sim.world import World
    from repro.wire import load_database, load_trips

    database = load_database(args.db)
    with open(args.trips, encoding="utf-8") as handle:
        uploads = load_trips(handle)
    registry, tracer = _observability_for(args.metrics_out)
    world = World(seed=args.seed)
    server = BackendServer(
        world.city.network, world.city.route_network, database, world.config,
        registry=registry, tracer=tracer,
    )
    server.receive_trips(uploads)
    stats = server.stats
    # Duplicate uploads never count into samples_received, so report their
    # samples separately instead of printing discarded > received.
    discarded = stats.samples_discarded - stats.samples_duplicate
    dup_note = (
        f", {stats.trips_duplicate} duplicate trips dropped"
        if stats.trips_duplicate else ""
    )
    print(f"processed {stats.trips_received} trips: {stats.trips_mapped} mapped, "
          f"{discarded}/{stats.samples_received} samples discarded, "
          f"{stats.segments_updated} segment updates{dup_note}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, "process", server, registry, tracer)
    return 0


def _load_metrics_document(path: str) -> dict:
    """Read a ``--metrics-out`` file; ``.prom`` is parsed back to JSON shape."""
    if path.endswith(".prom"):
        from repro.obs import parse_prometheus_text

        with open(path, encoding="utf-8") as handle:
            families = parse_prometheus_text(handle.read())
        return _document_from_families(families)
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _render_pairs(labels: dict) -> str:
    from repro.obs import escape_label_value

    return ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )


def _document_from_families(families: dict) -> dict:
    """Re-shape parsed Prometheus families into a --metrics-out document."""
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    labeled: dict = {}
    for name, family in sorted(families.items()):
        kind = family.get("type") or "gauge"
        samples = family.get("samples", [])
        if kind == "histogram":
            flat = {"count": 0, "sum": 0.0}
            children: dict = {}
            labelnames = sorted(
                {k for _, ls, _ in samples for k in ls if k != "le"}
            )
            for sample_name, labels, value in samples:
                base = {k: v for k, v in labels.items() if k != "le"}
                target = (
                    children.setdefault(
                        _render_pairs(base), {"count": 0, "sum": 0.0}
                    )
                    if base else flat
                )
                if sample_name.endswith("_count"):
                    target["count"] = int(value)
                elif sample_name.endswith("_sum"):
                    target["sum"] = value
            if labelnames:
                labeled[name] = {"type": "histogram", "labels": labelnames,
                                 "overflow_total": 0, "children": children}
            else:
                histograms[name] = flat
        else:
            flat_target = counters if kind == "counter" else gauges
            children = {}
            for _, labels, value in samples:
                if labels:
                    children[_render_pairs(labels)] = value
                else:
                    flat_target[name] = value
            if children:
                labelnames = sorted({k for _, ls, _ in samples for k in ls})
                labeled[name] = {"type": kind, "labels": labelnames,
                                 "overflow_total": 0, "children": children}
    return {
        "command": "prometheus",
        "metrics": {"counters": counters, "gauges": gauges,
                    "histograms": histograms, "labeled": labeled},
    }


def _match_memo_line(counters: dict) -> Optional[str]:
    """How well the PR-5 match-index memo worked, from its counters.

    Logical lookups split into cache hits (memo served the match) and
    misses (a physical candidate-pruned match ran).  Absent counters
    mean the document predates the memo (or matching never ran): no line.
    """
    hits = counters.get("match_cache_hits_total")
    misses = counters.get("match_cache_misses_total")
    if hits is None and misses is None:
        return None
    hits = int(hits or 0)
    misses = int(misses or 0)
    logical = hits + misses
    if not logical:
        return None
    ratio = hits / logical
    return (f"match memo: {logical} logical lookups = {misses} physical "
            f"matches + {hits} cache hits ({100 * ratio:.1f}% hit-ratio)")


def _slow_trip_hint(document: dict, threshold_ms: Optional[float]) -> Optional[str]:
    """A one-line tracing pointer when slow-trip exemplars breach the bar.

    Exemplars land in the metrics document only for runs that retained
    spans, so the hint surfaces latency outliers in the operator
    surfaces (``stats`` / ``alerts``) without anyone asking for them.
    """
    if threshold_ms is None:
        from repro.config import DEFAULT_CONFIG

        threshold_ms = DEFAULT_CONFIG.tracing.slow_trip_hint_ms
    exemplars = document.get("exemplars") or []
    slow = [
        e for e in exemplars
        if 1e3 * e.get("duration_s", 0.0) >= threshold_ms
    ]
    if not slow:
        return None
    worst = max(e.get("duration_s", 0.0) for e in slow)
    return (f"hint: {len(slow)} slow-trip exemplar(s) over {threshold_ms:g} ms "
            f"(worst {1e3 * worst:.1f} ms) — re-run with --trace-out "
            f"trace.json and inspect with `repro trace --summary trace.json`")


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.eval.reporting import render_table

    # A missing or unparseable metrics file is an operator mistake, not a
    # crash: report what went wrong on stderr and exit 2, no traceback.
    try:
        document = _load_metrics_document(args.metrics)
    except OSError as exc:
        print(f"stats: cannot read {args.metrics}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"stats: {args.metrics} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"stats: {args.metrics} is not valid Prometheus text: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(document, dict):
        print(f"stats: {args.metrics} is not a metrics document "
              f"(expected a JSON object, got {type(document).__name__})",
              file=sys.stderr)
        return 2

    sections: List[str] = []
    stats = document.get("stats", {})
    if stats:
        sections.append(render_table(
            ["counter", "value"],
            [[name, value] for name, value in stats.items()],
            title=f"Server pipeline counters ({document.get('command', '?')})",
        ))

    stages = document.get("stages", {})
    if stages:
        # Wall seconds under the tracer's top-level spans; absorbed
        # worker stages ran concurrently, so their shares can sum past
        # 100% — that's parallelism, not an accounting error.
        wall_s = document.get("wall_s", 0.0)
        rows = []
        for name, timing in sorted(
            stages.items(), key=lambda kv: -kv[1].get("total_s", 0.0)
        ):
            total_s = timing.get("total_s", 0.0)
            share = (
                f"{100 * total_s / wall_s:.1f}%" if wall_s > 0 else "-"
            )
            rows.append([
                name,
                timing.get("count", 0),
                f"{1e3 * total_s:.1f}",
                share,
                f"{1e3 * timing.get('mean_s', 0.0):.3f}",
                f"{1e3 * timing.get('max_s', 0.0):.3f}",
            ])
        title = "Per-stage span timings"
        if wall_s > 0:
            title += f" (wall {wall_s:.3f} s)"
        sections.append(render_table(
            ["stage", "count", "total (ms)", "% of wall", "mean (ms)",
             "max (ms)"],
            rows,
            title=title,
        ))

    exemplars = document.get("exemplars") or []
    if exemplars:
        rows = []
        for exemplar in exemplars:
            stage_parts = ", ".join(
                f"{stage} {1e3 * seconds:.1f}ms"
                for stage, seconds in list(
                    exemplar.get("stages", {}).items()
                )[:3]
            )
            rows.append([
                exemplar.get("key") or exemplar.get("name", "?"),
                exemplar.get("worker") or "coordinator",
                f"{1e3 * exemplar.get('duration_s', 0.0):.1f}",
                stage_parts or "-",
            ])
        sections.append(render_table(
            ["trip", "where", "total (ms)", "hottest stages"],
            rows,
            title="Slow-trip exemplars (tail retention)",
        ))
    hint = _slow_trip_hint(document, args.slow_trip_ms)
    if hint:
        sections.append(hint)

    metrics = document.get("metrics", {})
    memo_line = _match_memo_line(metrics.get("counters", {}))
    if memo_line:
        sections.append(memo_line)
    extra_counters = {
        name: value
        for name, value in metrics.get("counters", {}).items()
        if name.replace("server_", "") not in stats
    }
    if extra_counters:
        sections.append(render_table(
            ["metric", "value"],
            [[name, value] for name, value in extra_counters.items()],
            title="Other counters",
        ))
    gauges = metrics.get("gauges", {})
    if gauges:
        sections.append(render_table(
            ["gauge", "value"],
            [[name, value] for name, value in sorted(gauges.items())],
            title="Gauges",
        ))
    histograms = metrics.get("histograms", {})
    if histograms:
        rows = []
        for name, data in histograms.items():
            count = data.get("count", 0)
            mean = data.get("sum", 0.0) / count if count else 0.0
            rows.append([name, count, f"{mean:.2f}"])
        sections.append(render_table(
            ["histogram", "observations", "mean"],
            rows,
            title="Histograms",
        ))
    labeled = metrics.get("labeled", {})
    if labeled:
        rows = []
        for name, family in sorted(labeled.items()):
            for rendered, value in sorted(family.get("children", {}).items()):
                if family.get("type") == "histogram":
                    count = value.get("count", 0)
                    mean = value.get("sum", 0.0) / count if count else 0.0
                    shown = f"{count} obs, mean {mean:.2f}"
                else:
                    shown = value
                rows.append([f"{name}{{{rendered}}}", shown])
            overflow = family.get("overflow_total", 0)
            if overflow:
                rows.append([f"{name} (beyond cardinality cap)", overflow])
        sections.append(render_table(
            ["labeled series", "value"],
            rows,
            title="Labeled families",
        ))

    if not sections:
        print("metrics document is empty", file=sys.stderr)
        return 2
    print("\n\n".join(sections))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.sim.campaign import Campaign, CampaignPhase
    from repro.sim.world import World

    # A golden trace without live metrics would compare empty dicts, so
    # --golden-out forces the real registry just like --metrics-out.
    registry, tracer = _observability_for(
        bool(args.metrics_out or args.golden_out), policy=_trace_policy(args)
    )
    config = _ingest_config(args)
    store = None
    if args.store:
        from repro.store import open_store

        store = open_store(args.store, backend=args.store_backend,
                           fsync=config.ingest.store_fsync)
        store.bind_observability(registry=registry, tracer=tracer)
    elif args.resume:
        print("--resume requires --store PATH", file=sys.stderr)
        return 2
    world = World(seed=args.seed, config=config,
                  registry=registry, tracer=tracer, store=store)
    engine = _alert_engine_for(args.alert_rules, registry, world.server)
    campaign = Campaign(world, start=args.start, end=args.end,
                        headway_s=args.headway, workers=args.workers)
    phases = []
    if args.sparse_days > 0:
        phases.append(
            CampaignPhase("sparse", args.sparse_days, args.sparse_rate)
        )
    if args.intensive_days > 0:
        phases.append(
            CampaignPhase("intensive", args.intensive_days, args.intensive_rate)
        )
    if not phases:
        print("nothing to run: both phases have zero days", file=sys.stderr)
        return 2
    try:
        result = campaign.run(phases, resume=args.resume)
    except ValueError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    finally:
        if store is not None:
            store.close()
    print(f"{'day':<5} {'phase':<10} {'bus trips':>9} {'uploads':>8} "
          f"{'mapped':>7} {'coverage':>9}")
    for day in result.days:
        print(f"{day.day_index:<5} {day.phase:<10} {day.bus_trips:>9} "
              f"{day.uploads:>8} {day.trips_mapped:>7} "
              f"{100 * day.map_coverage:>8.0f}%")
    for phase in {p.name for p in phases}:
        print(f"mean uploads/day in {phase}: "
              f"{result.uploads_per_day(phase):.0f}")
    _print_alert_status(engine)
    if args.golden_out:
        from pathlib import Path

        from repro.testkit.golden import render_trace, trace_from_server

        trace_path = Path(args.golden_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text(
            render_trace(trace_from_server(world.server)), encoding="utf-8"
        )
        print(f"wrote golden trace -> {args.golden_out}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, "campaign", world.server, registry,
                       tracer)
    if args.trace_out:
        _write_trace(args.trace_out, tracer)
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    from repro.obs import AlertEngine, lint_rules, load_rules, \
        samples_from_document

    problems = lint_rules(args.rules)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 2
    rules = load_rules(args.rules)
    print(f"{args.rules}: {len(rules)} rule(s) OK")
    if not args.metrics:
        return 0

    document = _load_metrics_document(args.metrics)
    samples = samples_from_document(document)
    # A rule whose metric family never appears in the document is in a
    # third state: not healthy (nothing satisfied the SLO), not firing
    # (missing data is not evidence of ill health either) — report it
    # as no-data instead of silently counting it among the healthy.
    sample_names = {name for name, _, _ in samples}
    no_data = [rule for rule in rules if rule.metric not in sample_names]
    engine = AlertEngine(rules)
    # A static document is one persistent world state: repeat the pass
    # until every rule's `for` debounce could have elapsed.
    for tick in range(max(rule.for_count for rule in rules)):
        engine.evaluate(samples, now=float(tick))
    hint = _slow_trip_hint(document, args.slow_trip_ms)
    active = engine.active
    if not active:
        checked = len(rules) - len(no_data)
        print(f"{args.metrics}: {checked} rule(s) healthy, "
              f"{len(no_data)} no-data ({len(samples)} samples)"
              if no_data else
              f"{args.metrics}: all {len(rules)} rule(s) healthy "
              f"({len(samples)} samples)")
        for rule in no_data:
            print(f"  [no-data] {rule.name}: metric {rule.metric!r} "
                  f"absent from the document")
        if hint:
            print(hint)
        return 0
    print(f"{args.metrics}: {len(active)} alert(s) firing")
    for rule in no_data:
        print(f"  [no-data] {rule.name}: metric {rule.metric!r} "
              f"absent from the document")
    for event in active:
        labels = ",".join(f"{k}={v}" for k, v in event.labels)
        where = f"{{{labels}}}" if labels else ""
        print(f"  [{event.severity}] {event.rule}{where} "
              f"value={event.value:g} threshold={event.threshold:g}")
    if hint:
        print(hint)
    return 1


def _print_fleet_report(report: dict, source: str) -> None:
    """Render a fleet-health document as operator tables."""
    from repro.eval.reporting import render_table

    rows = []
    for route_id, row in sorted(report.get("routes", {}).items()):
        events = row.get("bus_events")
        headways = row.get("headways")
        mean = row.get("mean_headway_s")
        rows.append([
            route_id,
            events if events is not None else "-",
            headways if headways is not None else "-",
            f"{mean / 60:.1f}" if mean is not None else "-",
            f"{100 * row.get('bunching_rate', 0.0):.1f}%",
            f"{row.get('excess_wait_s', 0.0) / 60:.2f}",
            int(row.get("ghost_vehicles", 0)),
            f"{row.get('last_seen_age_s', 0.0) / 60:.1f}",
        ])
    title = "Fleet health"
    scheduled = report.get("scheduled_headway_s")
    if scheduled:
        title += f" (scheduled headway {scheduled / 60:g} min)"
    print(render_table(
        ["route", "bus events", "headways", "mean hdwy (min)",
         "bunching", "EWT (min)", "ghosts", "last seen (min)"],
        rows, title=title,
    ))
    ghost_routes = report.get("ghost_routes", [])
    print(f"ghost routes: "
          f"{', '.join(ghost_routes) if ghost_routes else 'none'}")

    od = report.get("od", {})
    flow_rows = [
        [flow["origin"], flow["dest"], flow["trips"]]
        for flow in od.get("top_flows", [])
    ]
    if flow_rows:
        print()
        print(render_table(
            ["origin stop", "dest stop", "trips"],
            flow_rows,
            title=f"Top O-D flows ({od.get('total_trips', 0)} trips over "
                  f"{od.get('distinct_pairs', 0)} pairs, "
                  f"{od.get('overflow_trips', 0)} beyond the pair cap)",
        ))
    print(f"source: {source}")


def _fleet_report_from_document(document: dict, top_k: int) -> dict:
    """Reconstruct a fleet-health report from a --metrics-out document.

    A saved snapshot only holds the exported label families, so the
    per-route rows carry the live gauges (bunching/EWT/ghosts) and the
    count of stops with an observed headway; the cumulative event
    totals only exist in a live campaign.
    """
    from repro.obs import samples_from_document

    routes: dict = {}
    flows: List[dict] = []
    od_total = od_overflow = od_counter = 0.0

    def row(route_id: str) -> dict:
        return routes.setdefault(route_id, {})

    for name, labels, value in samples_from_document(document):
        route_id = labels.get("route")
        if route_id == "_overflow":
            continue    # per-route families past the cardinality cap
        if name == "headway_seconds" and route_id is not None:
            entry = row(route_id)
            entry["headways"] = entry.get("headways", 0) + 1
            entry["_gap_sum"] = entry.get("_gap_sum", 0.0) + value
        elif name == "bunching_rate" and route_id is not None:
            row(route_id)["bunching_rate"] = value
        elif name == "excess_wait_seconds" and route_id is not None:
            row(route_id)["excess_wait_s"] = value
        elif name == "ghost_vehicles" and route_id is not None:
            row(route_id)["ghost_vehicles"] = value
        elif name == "ghost_last_seen_seconds" and route_id is not None:
            row(route_id)["last_seen_age_s"] = value
        elif name == "od_flow_trips":
            origin = labels.get("origin")
            dest = labels.get("dest")
            if origin in (None, "_overflow") or dest in (None, "_overflow"):
                od_overflow += value    # the shared `_overflow` child
            else:
                flows.append(
                    {"origin": origin, "dest": dest, "trips": int(value)}
                )
            od_total += value
        elif name == "fleet_od_trips_total":
            # Unlabeled running total; the family children normally sum
            # to the same number, so take whichever saw more (a snapshot
            # may omit either one).
            od_counter = value
    od_total = max(od_total, od_counter)

    for entry in routes.values():
        gap_sum = entry.pop("_gap_sum", None)
        if gap_sum is not None and entry.get("headways"):
            # Mean of each stop's *latest* gap, not the campaign mean.
            entry["mean_headway_s"] = gap_sum / entry["headways"]
    flows.sort(key=lambda f: (-f["trips"], f["origin"], f["dest"]))
    return {
        "routes": routes,
        "ghost_routes": sorted(
            route_id for route_id, entry in routes.items()
            if entry.get("ghost_vehicles", 0) >= 1
        ),
        "od": {
            "total_trips": int(od_total),
            "distinct_pairs": len(flows),
            "overflow_trips": int(od_overflow),
            "top_flows": flows[:top_k],
        },
    }


def _cmd_analytics(args: argparse.Namespace) -> int:
    if args.metrics:
        try:
            document = _load_metrics_document(args.metrics)
        except OSError as exc:
            print(f"analytics: cannot read {args.metrics}: {exc}",
                  file=sys.stderr)
            return 2
        except (json.JSONDecodeError, ValueError) as exc:
            print(f"analytics: {args.metrics}: {exc}", file=sys.stderr)
            return 2
        report = _fleet_report_from_document(document, args.top_flows)
        if not report["routes"] and not report["od"]["total_trips"]:
            print(f"analytics: no fleet-health families in {args.metrics} "
                  f"(was the campaign run with analytics enabled and "
                  f"--metrics-out?)", file=sys.stderr)
            return 2
        source = args.metrics
    else:
        from repro.sim.world import World
        from repro.util.units import parse_hhmm

        world = World(seed=args.seed)
        if world.server.analytics is None:
            print("analytics: the fleet-health stage is disabled in this "
                  "configuration", file=sys.stderr)
            return 2
        end_s = parse_hhmm(args.end)
        result = world.run(
            parse_hhmm(args.start), end_s,
            route_ids=args.routes,
            headway_s=args.headway,
            with_official_feed=False,
            workers=args.workers,
        )
        report = world.server.analytics.report(end_s, top_k=args.top_flows)
        source = (f"campaign {args.start}-{args.end} seed={args.seed} "
                  f"({len(result.traces)} bus trips, "
                  f"{world.server.stats.trips_received} uploads)")
    _print_fleet_report(report, source)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as out:
            json.dump(report, out, indent=2)
        print(f"wrote fleet-health report -> {args.json_out}")
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.testkit.conformance import (
        DEFAULT_WORKER_COUNTS,
        run_conformance,
    )

    worker_counts = tuple(args.workers) if args.workers else DEFAULT_WORKER_COUNTS
    report = run_conformance(
        scenarios=args.scenarios,
        seed=args.seed,
        record=args.record,
        check=not args.no_golden,
        fixture=args.fixture,
        worker_counts=worker_counts,
        matcher=args.matcher,
    )
    print(report.summary())
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as out:
            json.dump(report.as_dict(), out, indent=2)
        print(f"wrote conformance report -> {args.report_out}")
    if args.diff_out:
        diff_lines = [
            f"workers={workers}: {line}"
            for workers, lines in sorted(report.golden_results.items())
            for line in lines
        ]
        with open(args.diff_out, "w", encoding="utf-8") as out:
            out.write("\n".join(diff_lines) + ("\n" if diff_lines else ""))
        if diff_lines:
            print(f"wrote golden-trace diff -> {args.diff_out}")
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        format_trace_summary,
        summarize_chrome_trace,
        validate_chrome_trace,
    )

    try:
        with open(args.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        print(f"trace: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"trace: {args.trace} is not valid JSON: {exc}",
              file=sys.stderr)
        return 2

    problems = validate_chrome_trace(document)
    if problems:
        print(f"{args.trace}: {len(problems)} schema problem(s)",
              file=sys.stderr)
        for problem in problems[:20]:
            print(f"  {problem}", file=sys.stderr)
        if len(problems) > 20:
            print(f"  ... and {len(problems) - 20} more", file=sys.stderr)
        return 1
    if args.validate:
        events = len(document.get("traceEvents", []))
        print(f"{args.trace}: OK ({events} events)")
        return 0
    summary = summarize_chrome_trace(document, top=args.top)
    print(format_trace_summary(summary))
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.phone.power import PowerModel, TABLE_III_SETTINGS

    model = PowerModel()
    table = model.table_iii(rng=0, sessions=5)
    print(f"{'sensor setting':<26} {'HTC (mW)':>10} {'Nexus (mW)':>11}")
    for label, _ in TABLE_III_SETTINGS:
        htc, _ = table[label]["htc"]
        nexus, _ = table[label]["nexus"]
        print(f"{label:<26} {htc:>10.0f} {nexus:>11.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
