"""Phone-style cellular scan: the visible tower set ordered by RSS.

This is the measurement primitive of the whole system: "the mobile
phone normally can capture the signals from multiple cell towers at one
time ... We order their cell IDs according to their Received Signal
Strengths and use such an ordered set to signature each bus stop"
(§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.city.geometry import Point
from repro.config import RadioConfig
from repro.radio.propagation import PropagationModel
from repro.radio.towers import CellTower
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class Observation:
    """One cellular scan: tower ids in descending-RSS order."""

    tower_ids: Tuple[int, ...]
    rss_dbm: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.tower_ids) != len(self.rss_dbm):
            raise ValueError("tower_ids and rss_dbm must have equal length")
        if any(b > a for a, b in zip(self.rss_dbm, self.rss_dbm[1:])):
            raise ValueError("rss_dbm must be in descending order")

    def __len__(self) -> int:
        return len(self.tower_ids)

    @property
    def serving_tower(self) -> int:
        """The strongest (serving) cell."""
        if not self.tower_ids:
            raise ValueError("empty observation has no serving tower")
        return self.tower_ids[0]


class CellularScanner:
    """Scans the tower field at a point and returns an :class:`Observation`.

    Towers below the receive sensitivity are invisible; at most
    ``config.max_visible`` strongest neighbours are reported, like a
    phone's neighbour-cell list.
    """

    def __init__(
        self,
        towers: Sequence[CellTower],
        propagation: PropagationModel,
        config: Optional[RadioConfig] = None,
    ):
        if not towers:
            raise ValueError("scanner needs at least one tower")
        self.towers: List[CellTower] = list(towers)
        self.propagation = propagation
        self.config = config or propagation.config
        self._positions = np.array(
            [(t.position.x, t.position.y) for t in self.towers]
        )

    def scan(self, where: Point, rng: SeedLike = None) -> Observation:
        """One scan at ``where`` with temporal noise."""
        rng = ensure_rng(rng)
        return self._scan(where, rng, temporal=True)

    def mean_scan(self, where: Point) -> Observation:
        """Noise-free scan of the long-term mean field (for analysis)."""
        return self._scan(where, None, temporal=False)

    def _scan(
        self, where: Point, rng: Optional[np.random.Generator], temporal: bool
    ) -> Observation:
        # Pre-filter by distance: beyond ~4 km a macro cell cannot clear the
        # sensitivity floor in this model, so skip the full RSS computation.
        deltas = self._positions - np.array([where.x, where.y])
        distances = np.hypot(deltas[:, 0], deltas[:, 1])
        candidate_idx = np.nonzero(distances < 4000.0)[0]

        pairs: List[Tuple[float, int]] = []
        for idx in candidate_idx:
            tower = self.towers[int(idx)]
            if temporal:
                rss = self.propagation.measure_rss_dbm(tower, where, rng)
            else:
                rss = self.propagation.mean_rss_dbm(tower, where)
            if rss >= self.config.rx_sensitivity_dbm:
                pairs.append((rss, tower.tower_id))
        pairs.sort(key=lambda p: (-p[0], p[1]))
        pairs = pairs[: self.config.max_visible]
        return Observation(
            tower_ids=tuple(tid for _, tid in pairs),
            rss_dbm=tuple(rss for rss, _ in pairs),
        )

    def visible_count(self, where: Point) -> int:
        """Number of towers visible in the mean field at ``where``."""
        return len(self.mean_scan(where))
