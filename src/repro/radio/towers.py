"""Cell tower deployment over the synthetic region.

The paper observes that an urban cell tower covers roughly 200–900 m and
that a phone sees 4–7 towers at a bus stop (§III-A).  We deploy towers
on a jittered grid with an inter-site distance matching that coverage,
which together with the propagation model reproduces those visibility
counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.city.geometry import Point
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class CellTower:
    """A cell tower (one logical cell) with a fixed position."""

    tower_id: int
    position: Point
    tx_power_dbm: float = 43.0


def deploy_towers(
    width_m: float,
    height_m: float,
    inter_site_m: float = 400.0,
    tx_power_dbm: float = 43.0,
    jitter_fraction: float = 0.3,
    margin_m: float = 400.0,
    seed: SeedLike = 0,
) -> List[CellTower]:
    """Deploy towers on a jittered grid covering the region plus a margin.

    ``jitter_fraction`` displaces each site uniformly by up to that
    fraction of the inter-site distance, breaking grid symmetry so that
    RSS rank orders differ between nearby stops (the property the
    fingerprints rely on).
    """
    if inter_site_m <= 0:
        raise ValueError("inter_site_m must be positive")
    rng = ensure_rng(seed)
    towers: List[CellTower] = []
    xs = np.arange(-margin_m, width_m + margin_m + 1e-9, inter_site_m)
    ys = np.arange(-margin_m, height_m + margin_m + 1e-9, inter_site_m)
    tower_id = 1000  # ids look like real cell ids, not tiny indices
    for row, y in enumerate(ys):
        # Offset alternate rows for a roughly hexagonal layout.
        x_offset = (inter_site_m / 2.0) if row % 2 else 0.0
        for x in xs:
            jitter = rng.uniform(-1, 1, size=2) * jitter_fraction * inter_site_m
            towers.append(
                CellTower(
                    tower_id=tower_id,
                    position=Point(x + x_offset + jitter[0], y + jitter[1]),
                    tx_power_dbm=tx_power_dbm,
                )
            )
            tower_id += 1
    return towers


def towers_for_city(city, inter_site_m: float = 400.0, seed: SeedLike = 0) -> List[CellTower]:
    """Deploy towers sized to a :class:`repro.city.City` region."""
    return deploy_towers(
        width_m=city.spec.width_m,
        height_m=city.spec.height_m,
        inter_site_m=inter_site_m,
        seed=seed,
    )
