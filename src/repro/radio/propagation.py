"""Cellular signal propagation: log-distance path loss + shadowing.

The backend never uses absolute RSS — only the *rank order* of visible
towers at a place (§III-C).  What matters physically is therefore:

* the mean RSS from a tower at a location is stable over time
  (path loss + **static spatial shadowing**), so a bus stop has a
  stable fingerprint; and
* individual measurements fluctuate by a few dB (**temporal noise**,
  fast fading, bodies, bus metal), so ranks occasionally swap — which
  is exactly why the paper needs an order-tolerant matcher.

The shadowing field is deterministic in (seed, tower, location): it is
bilinearly interpolated from unit-normal draws keyed by grid corners,
giving a smooth field with ``shadow_grid_m`` correlation length that
never depends on evaluation order.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.city.geometry import Point
from repro.config import RadioConfig
from repro.radio.towers import CellTower
from repro.util.rng import SeedLike, ensure_rng, field_rng


class PropagationModel:
    """Deterministic mean RSS field plus per-measurement noise."""

    def __init__(self, config: Optional[RadioConfig] = None, seed: int = 0):
        self.config = config or RadioConfig()
        self._seed = int(seed)
        self._corner_cache: dict = {}

    # -- mean field ---------------------------------------------------------

    def mean_rss_dbm(self, tower: CellTower, where: Point) -> float:
        """Long-term average RSS of ``tower`` at ``where`` (no temporal noise)."""
        distance = max(tower.position.distance_to(where), 1.0)
        path_loss = (
            self.config.path_loss_ref_db
            + 10.0 * self.config.path_loss_exponent * math.log10(distance)
        )
        return tower.tx_power_dbm - path_loss - self._shadow_db(tower.tower_id, where)

    def _shadow_db(self, tower_id: int, where: Point) -> float:
        """Static spatial shadowing, bilinear over a noise lattice."""
        grid = self.config.shadow_grid_m
        gx = where.x / grid
        gy = where.y / grid
        x0, y0 = math.floor(gx), math.floor(gy)
        fx, fy = gx - x0, gy - y0
        v00 = self._corner(tower_id, x0, y0)
        v10 = self._corner(tower_id, x0 + 1, y0)
        v01 = self._corner(tower_id, x0, y0 + 1)
        v11 = self._corner(tower_id, x0 + 1, y0 + 1)
        value = (
            v00 * (1 - fx) * (1 - fy)
            + v10 * fx * (1 - fy)
            + v01 * (1 - fx) * fy
            + v11 * fx * fy
        )
        return value * self.config.shadowing_sigma_db

    def _corner(self, tower_id: int, ix: int, iy: int) -> float:
        key = (tower_id, ix, iy)
        cached = self._corner_cache.get(key)
        if cached is None:
            cached = float(
                field_rng(self._seed, "shadow", tower_id, ix, iy).standard_normal()
            )
            self._corner_cache[key] = cached
        return cached

    # -- measurements --------------------------------------------------------

    def measure_rss_dbm(
        self, tower: CellTower, where: Point, rng: SeedLike = None
    ) -> float:
        """One RSS measurement: mean field plus temporal fluctuation."""
        rng = ensure_rng(rng)
        return self.mean_rss_dbm(tower, where) + rng.normal(
            0.0, self.config.temporal_sigma_db
        )
