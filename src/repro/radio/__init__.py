"""Cellular radio substrate: towers, propagation, scanning, GPS error model."""

from repro.radio.gps import GpsCondition, GpsErrorModel
from repro.radio.propagation import PropagationModel
from repro.radio.scanner import CellularScanner, Observation
from repro.radio.towers import CellTower, deploy_towers, towers_for_city

__all__ = [
    "GpsCondition",
    "GpsErrorModel",
    "PropagationModel",
    "CellularScanner",
    "Observation",
    "CellTower",
    "deploy_towers",
    "towers_for_city",
]
