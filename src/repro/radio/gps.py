"""Urban-canyon GPS error model (paper Fig. 1).

The paper motivates dropping GPS with a measurement study in downtown
Singapore: median fix error ≈40 m stationary and ≈68 m on buses, with
90th percentiles ≈75 m and ≈130 m, because high-rises block
line-of-sight and the bus body attenuates further.  We model the error
magnitude as lognormal — the standard heavy-tailed choice for multipath
position error — with parameters solved from the reported median and
90th percentile, and a uniform error bearing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from repro.city.geometry import Point
from repro.config import GpsConfig
from repro.util.rng import SeedLike, ensure_rng

#: Standard normal quantile for the 90th percentile.
_Z90 = 1.2815515655446004


class GpsCondition(Enum):
    """Measurement condition of the Fig. 1 study."""

    STATIONARY = "stationary"
    ON_BUS = "on_bus"


@dataclass(frozen=True)
class _LognormalParams:
    mu: float
    sigma: float


class GpsErrorModel:
    """Samples GPS fix errors and noisy position fixes."""

    def __init__(self, config: Optional[GpsConfig] = None):
        self.config = config or GpsConfig()
        self._params = {
            GpsCondition.STATIONARY: _solve(
                self.config.stationary_median_m, self.config.stationary_p90_m
            ),
            GpsCondition.ON_BUS: _solve(
                self.config.onbus_median_m, self.config.onbus_p90_m
            ),
        }

    def sample_errors(
        self, condition: GpsCondition, n: int, rng: SeedLike = None
    ) -> np.ndarray:
        """Sample ``n`` fix error magnitudes in metres."""
        if n < 0:
            raise ValueError("n must be non-negative")
        rng = ensure_rng(rng)
        params = self._params[condition]
        return rng.lognormal(params.mu, params.sigma, size=n)

    def fix(
        self, true_position: Point, condition: GpsCondition, rng: SeedLike = None
    ) -> Point:
        """One noisy GPS fix around the true position."""
        rng = ensure_rng(rng)
        error = float(self.sample_errors(condition, 1, rng)[0])
        bearing = rng.uniform(0.0, 2.0 * math.pi)
        return true_position.offset(error * math.cos(bearing), error * math.sin(bearing))

    def median_error_m(self, condition: GpsCondition) -> float:
        """Model median error (analytic, equals the configured value)."""
        return math.exp(self._params[condition].mu)

    def p90_error_m(self, condition: GpsCondition) -> float:
        """Model 90th-percentile error (analytic)."""
        params = self._params[condition]
        return math.exp(params.mu + _Z90 * params.sigma)


def _solve(median_m: float, p90_m: float) -> _LognormalParams:
    if median_m <= 0 or p90_m <= median_m:
        raise ValueError("need 0 < median < p90 to fit a lognormal")
    mu = math.log(median_m)
    sigma = (math.log(p90_m) - mu) / _Z90
    return _LognormalParams(mu, sigma)
