"""Whole-system simulation: city + radio + buses + riders + backend.

:class:`World` wires every substrate together and drives a campaign
through the discrete-event engine: buses dispatch on headways, riders
tap and their phones record, uploads reach the backend shortly after
each ride ends, taxis feed the official comparison data, and the server
publishes its map every T = 5 minutes — the live pipeline of Fig. 4.

:func:`simulate_day` is the one-call entry point used by the examples
and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.city.builder import City, build_city
from repro.city.road_network import SegmentId
from repro.config import SystemConfig
from repro.core.fingerprint import FingerprintDatabase
from repro.core.ingest import IngestEngine
from repro.core.server import BackendServer, TripReport
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER
from repro.phone.app import DspMode, PhoneAgent
from repro.phone.cellular import CellularSampler
from repro.phone.trip_recorder import TripUpload
from repro.radio.propagation import PropagationModel
from repro.radio.scanner import CellularScanner
from repro.radio.towers import towers_for_city
from repro.sim.bus import BusTripTrace, dispatch_times, simulate_bus_trip
from repro.sim.events import Simulator
from repro.sim.taxi import OfficialTrafficFeed
from repro.sim.traffic import TrafficField, default_hotspots_for
from repro.sim.uplink import UplinkChannel
from repro.store import StateStore
from repro.util.counters import PersistentCounter
from repro.util.rng import derive_rng, ensure_rng
from repro.util.units import parse_hhmm

_log = get_logger(__name__)


@dataclass
class SimulationResult:
    """Everything a campaign produced, for evaluation."""

    city: City
    config: SystemConfig
    traffic: TrafficField
    server: BackendServer
    traces: List[BusTripTrace]
    reports: List[TripReport]
    uploads: List[TripUpload]
    official: Optional[OfficialTrafficFeed]
    start_s: float
    end_s: float

    @property
    def uploads_processed(self) -> int:
        """Trips the backend received."""
        return self.server.stats.trips_received

    def true_speed_kmh(self, segment_id: SegmentId, t: float) -> float:
        """Ground-truth automobile speed (km/h) on a segment."""
        return 3.6 * self.traffic.car_speed_ms(segment_id, t)


class World:
    """A fully wired instance of the system over a synthetic city."""

    def __init__(
        self,
        city: Optional[City] = None,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        survey_samples_per_stop: int = 5,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        store: Optional[StateStore] = None,
    ):
        self.city = city or build_city()
        self.config = config or SystemConfig()
        self.seed = seed
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rng = ensure_rng(seed)
        # Persistent across run() calls: phone ids must never repeat
        # between campaign days or the server's duplicate-trip ledger
        # would silently drop later days' uploads.  A PersistentCounter
        # so a resumed campaign restores the position a dead process
        # reached instead of reissuing day-one rider ids.
        self._rider_ids = PersistentCounter()

        spec = self.city.spec
        self.traffic = TrafficField(
            self.city.network,
            hotspots=default_hotspots_for(spec.width_m, spec.height_m),
            seed=seed,
        )
        self.towers = towers_for_city(self.city, seed=seed)
        self.propagation = PropagationModel(self.config.radio, seed=seed)
        self.scanner = CellularScanner(self.towers, self.propagation, self.config.radio)
        self.sampler = CellularSampler(self.scanner)
        self.database = FingerprintDatabase.survey(
            self.city.registry,
            self.scanner,
            samples_per_stop=survey_samples_per_stop,
            config=self.config.matching,
            rng=derive_rng(seed, "survey"),
        )
        self.server = BackendServer(
            self.city.network,
            self.city.route_network,
            self.database,
            self.config,
            registry=self.registry,
            tracer=self.tracer,
            store=store,
        )

    @property
    def rider_counter(self) -> PersistentCounter:
        """The rider-id counter (campaign resume snapshots/restores it)."""
        return self._rider_ids

    # -- campaign ------------------------------------------------------------

    def run(
        self,
        start_s: float,
        end_s: float,
        route_ids: Optional[Sequence[str]] = None,
        headway_s: Optional[float] = None,
        dsp_mode: DspMode = DspMode.FAST,
        with_official_feed: bool = True,
        workers: int = 1,
        keep_matches: bool = False,
        skip_events: int = 0,
    ) -> SimulationResult:
        """Run a sensing campaign over ``[start_s, end_s)``.

        Buses on each route dispatch at the configured headway.  A trip
        becomes ready to upload once its 10-minute silence timeout
        concludes it; delivery then goes through the configured uplink
        channel (loss, latency, reordering) and the arrivals interleave
        with the server's 5-minute publication ticks through the event
        engine.

        ``workers > 1`` runs the pure match→cluster→map stages of every
        delivered upload across a process pool up front (in delivery
        order), then replays the stateful merge at the original event
        times — the map, stats and reports are bit-identical to the
        serial run.

        ``skip_events`` silently swallows the first N backend events
        (trip deliveries *and* publish ticks, in engine firing order).
        Campaign resume uses it to fast-forward through the prefix of a
        half-finished day already recovered from the WAL: the event
        schedule is rebuilt deterministically, and exactly the events
        whose records were journaled before the crash are skipped.
        """
        if end_s <= start_s:
            raise ValueError("end must be after start")
        route_ids = list(route_ids or self.city.route_network.route_ids)
        headway = headway_s or self.config.bus.headway_s
        if self.server.analytics is not None:
            # The bunching threshold and ghost staleness clock both
            # derive from the dispatch headway actually driven here.
            self.server.analytics.bind_schedule(headway)

        trace_rng = derive_rng(self.seed, f"traces-{start_s}")
        phone_rng = derive_rng(self.seed, f"phones-{start_s}")
        rider_ids = self._rider_ids

        traces: List[BusTripTrace] = []
        with self.tracer.span("bus_simulation"):
            for route_id in route_ids:
                route = self.city.route_network.route(route_id)
                for dispatch in dispatch_times(start_s, end_s, headway, trace_rng):
                    traces.append(
                        simulate_bus_trip(
                            route,
                            dispatch,
                            self.traffic,
                            rider_ids,
                            rng=trace_rng,
                            bus_config=self.config.bus,
                            rider_config=self.config.riders,
                            model_b=self.config.traffic_model.b,
                        )
                    )

        # Phones ride along and produce their uploads.
        ready_uploads: List[Tuple[float, TripUpload]] = []
        with self.tracer.span("phone_recording"):
            for trace in traces:
                for ride in trace.participants:
                    agent = PhoneAgent(
                        phone_id=f"rider-{ride.rider_id}",
                        sampler=self.sampler,
                        registry=self.city.registry,
                        config=self.config,
                        mode=dsp_mode,
                        rng=phone_rng,
                        metrics=self.registry,
                    )
                    for upload in agent.ride_and_record(trace, ride):
                        ready_at = (
                            upload.end_s + self.config.trip_recorder.trip_timeout_s
                        )
                        ready_uploads.append((ready_at, upload))

        # Uploads cross the flaky phone→server uplink: some are lost,
        # all are delayed, and delivery order is arrival order.
        with self.tracer.span("uplink"):
            channel = UplinkChannel(
                self.config.uplink, rng=derive_rng(self.seed, f"uplink-{start_s}")
            )
            timed_uploads = channel.transmit_all(ready_uploads)

        # Interleave uploads with publication ticks on the event engine.
        # One shared gate swallows the first ``skip_events`` backend
        # events — trips and publishes alike, in firing order, matching
        # the WAL record order a journaled run produces.
        skip_gate = [int(skip_events)]

        def _consume_skip() -> bool:
            if skip_gate[0] > 0:
                skip_gate[0] -= 1
                return True
            return False

        reports: List[TripReport] = []
        with self.tracer.span("ingest"):
            sim = Simulator(start_time=start_s)
            if workers > 1:
                # Fan the pure stages out now, in delivery order (the
                # same order the events below fire in), then schedule
                # only the single-writer merges at the original times.
                with IngestEngine.for_server(
                    self.server, workers=workers
                ) as engine:
                    prepared_all = self.server.prepare_many(
                        [upload for _, upload in timed_uploads],
                        engine,
                        keep_matches=keep_matches,
                    )
                def _merge(sim_state, prepared_trip, upload):
                    if _consume_skip():
                        return
                    # Keyed span: slow single-writer merges surface as
                    # slow-trip exemplars alongside slow worker trips.
                    with self.tracer.span(
                        "ingest_merge", key=prepared_trip.trip_key
                    ):
                        reports.append(
                            self.server.apply_prepared(
                                prepared_trip,
                                now_s=sim_state.now,
                                upload=upload,
                            )
                        )

                for (arrive_at, upload), prepared in zip(
                    timed_uploads, prepared_all
                ):
                    sim.schedule(
                        max(arrive_at, start_s),
                        lambda s, p=prepared, u=upload: _merge(s, p, u),
                    )
            else:
                def _deliver(sim_state, upload):
                    if _consume_skip():
                        return
                    reports.append(
                        self.server.receive_trip(
                            upload,
                            now_s=sim_state.now,
                            keep_matches=keep_matches,
                        )
                    )

                for arrive_at, upload in timed_uploads:
                    sim.schedule(
                        max(arrive_at, start_s),
                        lambda s, u=upload: _deliver(s, u),
                    )
            horizon = max(
                [end_s] + [arrive_at for arrive_at, _ in timed_uploads]
            ) + 1.0
            def _publish(sim_state):
                # A skipped publish must not reach the server: replay
                # already published this tick, and the map's strictly-
                # increasing guard would (rightly) refuse a second one.
                if _consume_skip():
                    return
                self.server.publish(sim_state.now)

            sim.schedule_every(
                self.config.fusion.update_period_s,
                _publish,
                first_at=start_s + self.config.fusion.update_period_s,
                until=horizon,
            )
            sim.run(until=horizon)
        fleet = self.server.analytics
        log_event(
            _log, "campaign_day_complete",
            start_s=start_s, end_s=end_s,
            bus_trips=len(traces), uploads_ready=len(ready_uploads),
            uploads_delivered=len(timed_uploads), reports=len(reports),
            fleet_bus_events=(
                len(fleet.headways) if fleet is not None else None
            ),
            fleet_ghost_routes=(
                len(fleet.ghosts.ghost_routes(horizon))
                if fleet is not None else None
            ),
            fleet_od_trips=(
                fleet.od_flows.total_trips if fleet is not None else None
            ),
        )

        official = None
        if with_official_feed:
            official = OfficialTrafficFeed.from_field(
                self.traffic,
                sorted(self.city.route_network.covered_segments()),
                start_s,
                end_s,
                config=self.config.taxi,
                seed=derive_rng(self.seed, "official"),
            )

        return SimulationResult(
            city=self.city,
            config=self.config,
            traffic=self.traffic,
            server=self.server,
            traces=traces,
            reports=reports,
            uploads=[upload for _, upload in timed_uploads],
            official=official,
            start_s=start_s,
            end_s=end_s,
        )


def simulate_day(
    city: Optional[City] = None,
    seed: int = 0,
    start: str = "07:00",
    end: str = "20:00",
    config: Optional[SystemConfig] = None,
    route_ids: Optional[Sequence[str]] = None,
    headway_s: Optional[float] = None,
    dsp_mode: DspMode = DspMode.FAST,
    with_official_feed: bool = True,
    workers: int = 1,
) -> SimulationResult:
    """Build a world and run one service day (the common entry point)."""
    world = World(city=city, config=config, seed=seed)
    return world.run(
        parse_hhmm(start),
        parse_hhmm(end),
        route_ids=route_ids,
        headway_s=headway_s,
        dsp_mode=dsp_mode,
        with_official_feed=with_official_feed,
        workers=workers,
    )
