"""Physical-world simulation: traffic, buses, riders, taxis, audio, events."""

from repro.sim.audio import MotionTrace, synthesize_cabin_audio, synthesize_motion
from repro.sim.bus import (
    BusTripTrace,
    ParticipantRide,
    SegmentTraversal,
    StopVisit,
    TapEvent,
    bus_running_time_s,
    dispatch_times,
    simulate_bus_trip,
)
from repro.sim.campaign import Campaign, CampaignPhase, CampaignResult, DayStats
from repro.sim.events import Simulator
from repro.sim.taxi import AvlReport, OfficialTrafficFeed, TaxiFleet, taxi_speed_ms
from repro.sim.traffic import DailyProfile, Hotspot, TrafficField, default_hotspots_for
from repro.sim.uplink import UplinkChannel, UplinkStats

__all__ = [
    "MotionTrace",
    "synthesize_cabin_audio",
    "synthesize_motion",
    "BusTripTrace",
    "ParticipantRide",
    "SegmentTraversal",
    "StopVisit",
    "TapEvent",
    "bus_running_time_s",
    "dispatch_times",
    "simulate_bus_trip",
    "Campaign",
    "CampaignPhase",
    "CampaignResult",
    "DayStats",
    "Simulator",
    "AvlReport",
    "OfficialTrafficFeed",
    "TaxiFleet",
    "taxi_speed_ms",
    "DailyProfile",
    "Hotspot",
    "TrafficField",
    "default_hotspots_for",
    "UplinkChannel",
    "UplinkStats",
]
