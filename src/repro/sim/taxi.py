"""Simulated taxi AVL fleet: the paper's "official" ground-truth feed.

The paper validates against LTA traffic data derived from AVL reports
of 10,000+ taxis (§IV-A) and observes that taxi-derived speeds v_T run
*above* the bus-derived estimate v_A when traffic is light, because
taxis drive more aggressively than average traffic (§IV-C).

Two layers are provided:

* :class:`TaxiFleet` — an agent-based fleet doing shortest-path trips
  over the road network and emitting timestamped AVL reports.
* :class:`OfficialTrafficFeed` — the aggregated per-segment, windowed
  mean speeds (what LTA actually hands out), either built from a fleet's
  reports or sampled analytically from the ground-truth field with the
  same aggressiveness bias (fast path for the large benches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.city.road_network import NodeId, RoadNetwork, SegmentId
from repro.config import TaxiConfig
from repro.sim.traffic import TrafficField
from repro.util.rng import SeedLike, ensure_rng
from repro.util.units import kmh_to_ms, ms_to_kmh


@dataclass(frozen=True)
class AvlReport:
    """One automatic-vehicle-location report from a taxi."""

    taxi_id: int
    time_s: float
    segment_id: SegmentId
    speed_ms: float


def taxi_speed_ms(
    car_speed_ms: float, config: TaxiConfig, rng: Optional[np.random.Generator] = None
) -> float:
    """Taxi speed given the ambient car speed.

    Matches ambient flow in congestion; above ~40 km/h taxis open a gap
    proportional to how light the traffic is, plus a small constant —
    reproducing the Fig. 10/11 high-speed divergence.
    """
    car_kmh = ms_to_kmh(car_speed_ms)
    taxi_kmh = (
        car_kmh
        + config.aggressiveness_offset_kmh
        + config.aggressiveness_gain * max(0.0, car_kmh - 40.0)
    )
    if rng is not None:
        taxi_kmh += float(rng.normal(0.0, config.speed_noise_kmh))
    return kmh_to_ms(max(taxi_kmh, 1.0))


class TaxiFleet:
    """Agent-based taxi fleet generating AVL reports over a time window."""

    def __init__(
        self,
        network: RoadNetwork,
        traffic: TrafficField,
        config: Optional[TaxiConfig] = None,
        seed: SeedLike = None,
    ):
        self.network = network
        self.traffic = traffic
        self.config = config or TaxiConfig()
        self._rng = ensure_rng(seed)

    def run(self, start_s: float, end_s: float) -> List[AvlReport]:
        """Drive the fleet from ``start_s`` to ``end_s``; return all reports.

        Each taxi repeatedly picks a random destination, follows the
        shortest path, and reports its segment and speed every
        ``report_period_s`` while driving.
        """
        if end_s <= start_s:
            raise ValueError("end must be after start")
        nodes = self.network.node_ids
        reports: List[AvlReport] = []
        for taxi_id in range(self.config.fleet_size):
            t = start_s + float(self._rng.uniform(0.0, self.config.report_period_s))
            node = int(self._rng.choice(nodes))
            next_report = t
            while t < end_s:
                goal = int(self._rng.choice(nodes))
                if goal == node:
                    continue
                path = self.network.shortest_path(node, goal)
                for u, v in zip(path, path[1:]):
                    seg = self.network.segment((u, v))
                    ambient = self.traffic.car_speed_ms((u, v), t)
                    speed = taxi_speed_ms(ambient, self.config, self._rng)
                    duration = seg.length_m / speed
                    while next_report <= t + duration:
                        if next_report >= t and next_report < end_s:
                            reports.append(
                                AvlReport(taxi_id, next_report, (u, v), speed)
                            )
                        next_report += self.config.report_period_s
                    t += duration
                    if t >= end_s:
                        break
                node = goal
        reports.sort(key=lambda r: r.time_s)
        return reports


class OfficialTrafficFeed:
    """Windowed per-segment mean taxi speeds (the LTA-style data product)."""

    def __init__(self, window_s: float = 900.0):
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self._sums: Dict[Tuple[SegmentId, int], Tuple[float, int]] = {}

    def _bucket(self, t: float) -> int:
        return int(t // self.window_s)

    def ingest(self, reports: Sequence[AvlReport]) -> None:
        """Aggregate raw AVL reports into windowed means."""
        for report in reports:
            key = (report.segment_id, self._bucket(report.time_s))
            total, count = self._sums.get(key, (0.0, 0))
            self._sums[key] = (total + report.speed_ms, count + 1)

    def speed_kmh(self, segment_id: SegmentId, t: float) -> Optional[float]:
        """Mean taxi speed in the window containing ``t``, or None if no data."""
        entry = self._sums.get((segment_id, self._bucket(t)))
        if entry is None:
            return None
        total, count = entry
        return ms_to_kmh(total / count)

    @classmethod
    def from_field(
        cls,
        traffic: TrafficField,
        segment_ids: Sequence[SegmentId],
        start_s: float,
        end_s: float,
        config: Optional[TaxiConfig] = None,
        window_s: float = 900.0,
        samples_per_window: int = 6,
        seed: SeedLike = None,
    ) -> "OfficialTrafficFeed":
        """Analytic fast path: sample the ground-truth field directly.

        Equivalent in distribution to running a dense fleet (each window
        receives ``samples_per_window`` taxi passages whose speeds apply
        the same aggressiveness model); used by the large benchmarks
        where simulating thousands of taxis would dominate runtime.
        """
        config = config or TaxiConfig()
        rng = ensure_rng(seed)
        feed = cls(window_s=window_s)
        t0 = start_s
        while t0 < end_s:
            for segment_id in segment_ids:
                for _ in range(samples_per_window):
                    t = t0 + float(rng.uniform(0.0, window_s))
                    ambient = traffic.car_speed_ms(segment_id, t)
                    speed = taxi_speed_ms(ambient, config, rng)
                    feed.ingest([AvlReport(-1, t, segment_id, speed)])
            t0 += window_s
        return feed
