"""A small discrete-event simulation engine.

The world simulation interleaves many processes — bus dispatches, rider
taps, periodic phone uploads, taxi AVL reports, backend update ticks —
so a classic event queue keeps causality straight.  Events at equal
times fire in scheduling order (a stable tiebreak), which keeps whole
simulations reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

Action = Callable[["Simulator"], None]


@dataclass(frozen=True)
class _Scheduled:
    time: float
    seq: int
    action: Action = field(compare=False)

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event-driven simulator with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[_Scheduled] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events waiting in the queue."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, time: float, action: Action) -> None:
        """Schedule ``action`` to run at absolute ``time``.

        Scheduling in the past (before the current clock) is an error —
        it would silently reorder causality.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time:.3f}; clock is already at {self._now:.3f}"
            )
        heapq.heappush(self._queue, _Scheduled(time, next(self._counter), action))

    def schedule_in(self, delay: float, action: Action) -> None:
        """Schedule ``action`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self._now + delay, action)

    def schedule_every(
        self,
        period: float,
        action: Action,
        first_at: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Schedule ``action`` periodically, starting at ``first_at``.

        The repetition stops once the next occurrence would be after
        ``until`` (when given); the action itself receives the simulator
        and may schedule further work.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        start = self._now if first_at is None else first_at

        def fire(sim: "Simulator") -> None:
            action(sim)
            next_time = sim.now + period
            if until is None or next_time <= until:
                sim.schedule(next_time, fire)

        self.schedule(start, fire)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order.

        Without ``until`` the queue is drained.  With ``until`` the run
        stops once the next event is strictly later, leaving the clock
        at ``until``.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            self._now = event.time
            self._processed += 1
            event.action(self)
        if until is not None and until > self._now:
            self._now = until

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._processed += 1
        event.action(self)
        return True
