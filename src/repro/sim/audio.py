"""Synthesis of the phone's raw sensor channels: cabin audio and motion.

The phone-side stack (``repro.phone``) operates on real signal arrays,
so the simulator must produce them:

* **Audio** — 8 kHz PCM of a bus cabin: broadband engine/babble noise
  (low-frequency weighted) plus IC-card reader beeps, each a dual-tone
  (1 kHz + 3 kHz in Singapore, §III-B) burst of ~120 ms.
* **Accelerometer** — magnitude traces distinguishing buses (frequent
  acceleration/braking/turns) from rapid trains (smooth), which the
  paper thresholds on variance to reject train rides (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.config import AccelConfig, BeepConfig
from repro.util.rng import SeedLike, ensure_rng


def synthesize_cabin_audio(
    duration_s: float,
    beep_times_s: Sequence[float],
    config: Optional[BeepConfig] = None,
    noise_rms: float = 0.05,
    beep_amplitude: float = 0.25,
    rng: SeedLike = None,
) -> np.ndarray:
    """8 kHz float PCM of a bus cabin with beeps at the given offsets.

    Beeps starting within ``duration_s`` are included even if they get
    truncated by the end of the buffer.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    config = config or BeepConfig()
    rng = ensure_rng(rng)
    n = int(round(duration_s * config.sample_rate_hz))
    audio = _engine_noise(n, noise_rms, config.sample_rate_hz, rng)
    for beep_start in beep_times_s:
        if not (0.0 <= beep_start < duration_s):
            raise ValueError(f"beep at {beep_start}s outside buffer [0, {duration_s})")
        _add_beep(audio, beep_start, beep_amplitude, config, rng)
    return audio


def _engine_noise(
    n: int, rms: float, sample_rate_hz: int, rng: np.random.Generator
) -> np.ndarray:
    """Low-frequency-weighted noise: engine rumble + cabin babble."""
    from scipy.signal import lfilter

    white = rng.standard_normal(n)
    # One-pole low-pass (≈300 Hz corner) gives the rumble its colour.
    alpha = float(np.exp(-2.0 * np.pi * 300.0 / sample_rate_hz))
    rumble = lfilter([1.0 - alpha], [1.0, -alpha], white)
    mixed = 3.0 * rumble + 0.25 * rng.standard_normal(n)
    scale = rms / (np.sqrt(np.mean(mixed**2)) + 1e-12)
    return mixed * scale


def _add_beep(
    audio: np.ndarray,
    start_s: float,
    amplitude: float,
    config: BeepConfig,
    rng: np.random.Generator,
) -> None:
    sr = config.sample_rate_hz
    start = int(round(start_s * sr))
    length = min(int(round(config.beep_duration_ms / 1000.0 * sr)), len(audio) - start)
    if length <= 0:
        return
    t = np.arange(length) / sr
    burst = np.zeros(length)
    for freq in config.tone_frequencies_hz:
        phase = rng.uniform(0.0, 2.0 * np.pi)
        burst += np.sin(2.0 * np.pi * freq * t + phase)
    burst /= len(config.tone_frequencies_hz)
    # Quick attack/decay envelope so the burst doesn't click.
    ramp = min(16, length // 4)
    envelope = np.ones(length)
    if ramp > 0:
        envelope[:ramp] = np.linspace(0.0, 1.0, ramp)
        envelope[-ramp:] = np.linspace(1.0, 0.0, ramp)
    audio[start : start + length] += amplitude * burst * envelope


@dataclass(frozen=True)
class MotionTrace:
    """An accelerometer magnitude trace with its ground-truth mode."""

    samples: np.ndarray
    sample_rate_hz: float
    mode: str                   # "bus" or "train"


def synthesize_motion(
    mode: str,
    duration_s: float,
    config: Optional[AccelConfig] = None,
    rng: SeedLike = None,
) -> MotionTrace:
    """Accelerometer magnitude (gravity removed) for a bus or train ride.

    Buses exhibit frequent speed changes and turns: strong low-frequency
    excursions (~0.8 m/s² swings every ~15 s) plus road vibration.
    Trains ride rails: small smooth accelerations and little vibration.
    """
    if mode not in ("bus", "train"):
        raise ValueError("mode must be 'bus' or 'train'")
    config = config or AccelConfig()
    rng = ensure_rng(rng)
    n = int(round(duration_s * config.sample_rate_hz))
    t = np.arange(n) / config.sample_rate_hz
    if mode == "bus":
        maneuver = np.zeros(n)
        # Random accelerate/brake/turn episodes.
        n_events = max(1, int(duration_s / 15.0))
        for _ in range(n_events):
            centre = rng.uniform(0.0, duration_s)
            width = rng.uniform(2.0, 5.0)
            strength = rng.uniform(0.6, 1.4) * rng.choice([-1.0, 1.0])
            maneuver += strength * np.exp(-0.5 * ((t - centre) / width) ** 2)
        vibration = 0.25 * rng.standard_normal(n)
        samples = maneuver + vibration
    else:
        glide = 0.08 * np.sin(2.0 * np.pi * t / max(duration_s, 30.0))
        vibration = 0.05 * rng.standard_normal(n)
        samples = glide + vibration
    return MotionTrace(samples=samples, sample_rate_hz=config.sample_rate_hz, mode=mode)
