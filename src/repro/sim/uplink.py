"""The upload channel: phones reach the server over WiFi or 3G (§III-B).

Real uplinks lose, delay and reorder uploads.  :class:`UplinkChannel`
models that: each upload is dropped with a configurable probability,
otherwise delivered after a base latency plus an exponential tail (a
phone waiting for its next WiFi window).  The world simulation routes
every upload through the channel, so the backend genuinely experiences
out-of-order delivery — and the Eq. 4 fuser must cope (observations
carry their *capture* timestamps, not their delivery times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import UplinkConfig
from repro.phone.trip_recorder import TripUpload
from repro.util.rng import SeedLike, ensure_rng


@dataclass
class UplinkStats:
    """Delivery accounting."""

    offered: int = 0
    delivered: int = 0
    lost: int = 0


class UplinkChannel:
    """Applies loss and delay to a stream of (ready_time, upload) pairs."""

    def __init__(self, config: Optional[UplinkConfig] = None, rng: SeedLike = None):
        self.config = config or UplinkConfig()
        if not 0.0 <= self.config.loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if self.config.base_delay_s < 0 or self.config.mean_extra_delay_s < 0:
            raise ValueError("delays must be non-negative")
        self._rng = ensure_rng(rng)
        self.stats = UplinkStats()

    def transmit(
        self, ready_s: float, upload: TripUpload
    ) -> Optional[Tuple[float, TripUpload]]:
        """One upload attempt; returns (arrival time, upload) or None if lost."""
        self.stats.offered += 1
        if self._rng.random() < self.config.loss_probability:
            self.stats.lost += 1
            return None
        delay = self.config.base_delay_s
        if self.config.mean_extra_delay_s > 0:
            delay += float(self._rng.exponential(self.config.mean_extra_delay_s))
        self.stats.delivered += 1
        return (ready_s + delay, upload)

    def transmit_all(
        self, ready_uploads: List[Tuple[float, TripUpload]]
    ) -> List[Tuple[float, TripUpload]]:
        """Channel a batch; the result is in *arrival* order (reordered)."""
        delivered = []
        for ready_s, upload in ready_uploads:
            outcome = self.transmit(ready_s, upload)
            if outcome is not None:
                delivered.append(outcome)
        delivered.sort(key=lambda pair: pair[0])
        return delivered
