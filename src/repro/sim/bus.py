"""Bus operation simulation: one bus serving one route dispatch.

Produces the physical ground truth the backend later tries to recover:
per-stop arrival/departure times, boarding/alighting counts (hence
IC-card taps), and per-segment bus running times.

Bus running time on a segment follows the delay-proportional transit
model that also underlies the paper's Eq. (3): buses absorb congestion
delay at ``1/b`` times the automobile rate (b = 0.5 → twice the car
delay), on top of their own free running time:

    BTT = BTT_free + (ATT − ATT_free) / b   (× lognormal noise)

Inverting this is exactly ``ATT = a + b·(BTT − BTT_free)`` with
``a = ATT_free = length / free automobile speed``, the paper's linear
model read as a congestion-delay relation (the reading under which its
stated ``a`` is consistent at free flow).  §III-D's regression fit of b
is reproduced in ``benchmarks/bench_ablation_penalty.py``'s sibling
``bench_table2``/traffic-model tests.

Buses skip stops where nobody boards or alights (§III-D), which is what
creates the merged-segment cases the backend must handle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.city.road_network import SegmentId
from repro.city.routes import BusRoute
from repro.config import BusConfig, RiderConfig
from repro.sim.traffic import TrafficField
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class TapEvent:
    """One IC-card tap (one boarding rider) at a stop."""

    time_s: float
    stop_order: int
    rider_id: int
    is_participant: bool


@dataclass(frozen=True)
class StopVisit:
    """Ground truth of the bus at one route stop."""

    stop_order: int
    station_id: int
    stop_id: str
    arrival_s: float
    depart_s: float
    boarders: int
    alighters: int
    served: bool                # False when the bus rolled past


@dataclass(frozen=True)
class SegmentTraversal:
    """Ground-truth running interval of the bus over one road segment."""

    segment_id: SegmentId
    enter_s: float
    exit_s: float

    @property
    def running_time_s(self) -> float:
        """Bus running time over the segment."""
        return self.exit_s - self.enter_s


@dataclass(frozen=True)
class ParticipantRide:
    """A rider carrying the sensing app: their boarding/alighting stops."""

    rider_id: int
    board_order: int
    alight_order: int


@dataclass
class BusTripTrace:
    """Everything that physically happened on one bus trip."""

    trip_id: str
    route_id: str
    dispatch_s: float
    visits: List[StopVisit] = field(default_factory=list)
    taps: List[TapEvent] = field(default_factory=list)
    traversals: List[SegmentTraversal] = field(default_factory=list)
    participants: List[ParticipantRide] = field(default_factory=list)

    @property
    def end_s(self) -> float:
        """Time the bus reached the last stop."""
        return self.visits[-1].arrival_s if self.visits else self.dispatch_s

    def served_visits(self) -> List[StopVisit]:
        """Visits where the bus actually stopped."""
        return [v for v in self.visits if v.served]


@dataclass
class _Rider:
    rider_id: int
    alight_order: int
    is_participant: bool


#: Bus free running speed (m/s): ~43 km/h, below the automobile free speed.
BUS_FREE_SPEED_MS = 12.0


def bus_running_time_s(
    segment_length_m: float,
    car_travel_time_s: float,
    car_free_time_s: float,
    b: float,
    rng: Optional[np.random.Generator] = None,
    noise_std: float = 0.0,
    max_speed_ms: float = 13.9,
) -> float:
    """Ground-truth bus running time over one segment.

    Delay-proportional model (see module docstring) with optional
    lognormal noise, clamped to physically sensible speeds.
    """
    if b <= 0:
        raise ValueError("b must be positive")
    btt_free = segment_length_m / BUS_FREE_SPEED_MS
    btt = btt_free + max(0.0, car_travel_time_s - car_free_time_s) / b
    if rng is not None and noise_std > 0:
        btt *= float(rng.lognormal(0.0, noise_std))
    min_time = segment_length_m / max_speed_ms
    max_time = segment_length_m / 1.0       # never below walking pace
    return float(min(max(btt, min_time), max_time))


def simulate_bus_trip(
    route: BusRoute,
    dispatch_s: float,
    traffic: TrafficField,
    rider_ids: Iterator[int],
    rng: SeedLike = None,
    bus_config: Optional[BusConfig] = None,
    rider_config: Optional[RiderConfig] = None,
    model_b: float = 0.5,
) -> BusTripTrace:
    """Simulate one bus running the full route from ``dispatch_s``.

    ``rider_ids`` supplies globally unique rider identifiers (share one
    ``itertools.count`` across trips).  Returns the ground-truth trace.
    """
    rng = ensure_rng(rng)
    bus_config = bus_config or BusConfig()
    rider_config = rider_config or RiderConfig()
    trace = BusTripTrace(
        trip_id=f"{route.route_id}@{int(dispatch_s)}",
        route_id=route.route_id,
        dispatch_s=dispatch_s,
    )
    onboard: List[_Rider] = []
    t = dispatch_s
    n_stops = len(route.stops)

    for order, route_stop in enumerate(route.stops):
        arrival = t
        is_last = order == n_stops - 1

        alighting = [r for r in onboard if r.alight_order <= order] if not is_last else list(onboard)
        onboard = [r for r in onboard if r not in alighting]

        boarders = 0
        taps: List[TapEvent] = []
        if not is_last:
            rate = rider_config.boarding_rate_per_stop * _demand_factor(traffic, arrival)
            boarders = int(rng.poisson(rate))
            tap_time = arrival + 2.0
            for _ in range(boarders):
                rider_id = next(rider_ids)
                is_participant = bool(rng.random() < rider_config.participation_rate)
                ride_len = max(1, int(rng.geometric(1.0 / rider_config.mean_ride_stops)))
                rider = _Rider(rider_id, min(order + ride_len, n_stops - 1), is_participant)
                onboard.append(rider)
                tap_time += float(rng.uniform(0.8, 2.2))
                taps.append(TapEvent(tap_time, order, rider_id, is_participant))
                if is_participant:
                    trace.participants.append(
                        ParticipantRide(rider_id, order, rider.alight_order)
                    )

        served = bool(alighting) or boarders > 0 or order == 0 or is_last
        if served:
            dwell = bus_config.dwell_base_s + bus_config.dwell_per_passenger_s * (
                boarders + len(alighting)
            )
            dwell *= float(rng.uniform(0.85, 1.25))
        else:
            dwell = 0.0
        depart = arrival + dwell

        trace.visits.append(
            StopVisit(
                stop_order=order,
                station_id=route_stop.station_id,
                stop_id=route_stop.stop_id,
                arrival_s=arrival,
                depart_s=depart,
                boarders=boarders,
                alighters=len(alighting),
                served=served,
            )
        )
        trace.taps.extend(taps)

        if is_last:
            break

        # Drive the segments to the next served stop position.
        t = depart
        for seg_id in route.segments_between(order, order + 1):
            segment = traffic.network.segment(seg_id)
            att = traffic.car_travel_time_s(seg_id, t)
            btt = bus_running_time_s(
                segment.length_m,
                att,
                segment.free_travel_time_s,
                b=model_b,
                rng=rng,
                noise_std=bus_config.btt_noise_std,
                max_speed_ms=bus_config.max_speed_ms,
            )
            trace.traversals.append(SegmentTraversal(seg_id, t, t + btt))
            t += btt

    # Fix up participants who planned to ride past the terminal.
    trace.participants = [
        ParticipantRide(p.rider_id, p.board_order, min(p.alight_order, n_stops - 1))
        for p in trace.participants
    ]
    return trace


def dispatch_times(
    start_s: float,
    end_s: float,
    headway_s: float,
    rng: SeedLike = None,
    jitter_fraction: float = 0.15,
) -> List[float]:
    """Dispatch times with headway jitter over a service window."""
    if headway_s <= 0:
        raise ValueError("headway must be positive")
    rng = ensure_rng(rng)
    times: List[float] = []
    t = start_s
    while t < end_s:
        times.append(t + float(rng.uniform(-1, 1)) * jitter_fraction * headway_s)
        t += headway_s
    return [max(start_s, time) for time in times]


def _demand_factor(traffic: TrafficField, t: float) -> float:
    """Boarding demand multiplier from the daily profile (peaks are busier)."""
    morning, evening = traffic.profile.bumps(t)
    return 1.0 + 0.9 * morning + 0.6 * evening
