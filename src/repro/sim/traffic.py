"""Ground-truth time-varying traffic: per-segment automobile speeds.

This is the quantity the whole system tries to estimate.  The field is

    v_car(segment, t) = free_speed(segment) * congestion(segment, t)

with ``congestion`` in (0, 1] built from three deterministic layers:

* a **daily profile** with morning and evening peaks;
* **spatial hotspots** (the paper's region has a university and a rapid
  train station generating routine morning shuttles, Fig. 9a) that
  deepen the peak on nearby, inbound-heading segments; and
* a slow per-segment **stochastic wiggle** (sum of incommensurate
  sinusoids with seeded phases) so 5-minute windows genuinely differ.

Everything is a pure function of (seed, segment, t), so any process can
query any time without simulation order mattering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.city.geometry import Point, heading
from repro.city.road_network import RoadNetwork, SegmentId
from repro.util.rng import field_rng
from repro.util.units import parse_hhmm


@dataclass(frozen=True)
class Hotspot:
    """A traffic attractor: deepens congestion on segments heading to it."""

    name: str
    position: Point
    radius_m: float = 1200.0
    morning_weight: float = 0.55
    evening_weight: float = 0.25


@dataclass(frozen=True)
class DailyProfile:
    """Region-wide congestion bumps over the day."""

    morning_peak_s: float = parse_hhmm("08:30")
    morning_width_s: float = 4200.0
    morning_depth: float = 0.30
    evening_peak_s: float = parse_hhmm("18:00")
    evening_width_s: float = 5400.0
    evening_depth: float = 0.20
    base_depth: float = 0.05            # daytime background activity

    def bumps(self, t: float) -> Tuple[float, float]:
        """(morning, evening) bump activations in [0, 1] at time ``t``.

        ``t`` may run past midnight (multi-day campaigns); the profile
        repeats every day.
        """
        tod = t % 86400.0
        morning = math.exp(-0.5 * ((tod - self.morning_peak_s) / self.morning_width_s) ** 2)
        evening = math.exp(-0.5 * ((tod - self.evening_peak_s) / self.evening_width_s) ** 2)
        return morning, evening


class TrafficField:
    """Deterministic ground-truth car-speed field over a road network."""

    #: Congestion never drops below this (cars keep crawling).
    MIN_CONGESTION = 0.18

    def __init__(
        self,
        network: RoadNetwork,
        hotspots: Optional[Sequence[Hotspot]] = None,
        profile: Optional[DailyProfile] = None,
        wiggle_amplitude: float = 0.06,
        seed: int = 0,
    ):
        self.network = network
        self.profile = profile or DailyProfile()
        self.hotspots: List[Hotspot] = list(hotspots or [])
        self.wiggle_amplitude = wiggle_amplitude
        self._seed = int(seed)
        self._segment_params: Dict[SegmentId, Tuple[float, float, np.ndarray]] = {}

    # -- public API -----------------------------------------------------------

    def congestion(self, segment_id: SegmentId, t: float) -> float:
        """Congestion factor in (0, 1]; 1 means free flow."""
        morning_gain, evening_gain, phases = self._params(segment_id)
        morning, evening = self.profile.bumps(t)
        depth = (
            self.profile.base_depth
            + self.profile.morning_depth * morning * morning_gain
            + self.profile.evening_depth * evening * evening_gain
        )
        depth += self._wiggle(phases, t)
        return float(min(1.0, max(self.MIN_CONGESTION, 1.0 - depth)))

    def car_speed_ms(self, segment_id: SegmentId, t: float) -> float:
        """Ground-truth automobile speed on a segment at time ``t`` (m/s)."""
        segment = self.network.segment(segment_id)
        return segment.free_speed_ms * self.congestion(segment_id, t)

    def car_travel_time_s(self, segment_id: SegmentId, depart_t: float) -> float:
        """Automobile traversal time of the segment departing at ``depart_t``.

        Uses the speed at the temporal midpoint (one fixed-point step),
        accurate for segment times of tens of seconds against a field
        that varies over tens of minutes.
        """
        segment = self.network.segment(segment_id)
        first_guess = segment.length_m / self.car_speed_ms(segment_id, depart_t)
        mid_speed = self.car_speed_ms(segment_id, depart_t + first_guess / 2.0)
        return segment.length_m / mid_speed

    def mean_region_speed_kmh(self, t: float) -> float:
        """Length-weighted mean car speed over all segments (km/h)."""
        total_len = 0.0
        total_time = 0.0
        for segment in self.network.segments:
            total_len += segment.length_m
            total_time += segment.length_m / self.car_speed_ms(segment.segment_id, t)
        return 3.6 * total_len / total_time if total_time else 0.0

    # -- internals -------------------------------------------------------------

    def _params(self, segment_id: SegmentId) -> Tuple[float, float, np.ndarray]:
        cached = self._segment_params.get(segment_id)
        if cached is not None:
            return cached
        segment = self.network.segment(segment_id)
        midpoint = segment.start.midpoint(segment.end)
        seg_heading = heading(segment.start, segment.end)

        morning_gain = 0.35   # background peak felt everywhere
        evening_gain = 0.5
        for hotspot in self.hotspots:
            distance = midpoint.distance_to(hotspot.position)
            proximity = math.exp(-0.5 * (distance / hotspot.radius_m) ** 2)
            toward = heading(midpoint, hotspot.position)
            alignment = max(0.0, math.cos(seg_heading - toward))
            # Morning flow heads toward the attractor, evening flow away.
            morning_gain += hotspot.morning_weight * proximity * alignment * 2.0
            evening_gain += hotspot.evening_weight * proximity * (1.0 - alignment) * 2.0

        rng = field_rng(self._seed, "traffic", *segment_id)
        phases = rng.uniform(0.0, 2.0 * math.pi, size=3)
        params = (min(morning_gain, 2.2), min(evening_gain, 2.2), phases)
        self._segment_params[segment_id] = params
        return params

    def _wiggle(self, phases: np.ndarray, t: float) -> float:
        periods = (1900.0, 3100.0, 5300.0)  # incommensurate, tens of minutes
        value = sum(
            math.sin(2.0 * math.pi * t / period + phase)
            for period, phase in zip(periods, phases)
        )
        return self.wiggle_amplitude * value / 3.0


def default_hotspots_for(width_m: float, height_m: float) -> List[Hotspot]:
    """Hotspots mirroring the paper's region: a university and a rail station.

    Fig. 9(a)'s slowest morning segments sit on two main roads between a
    university and a rapid-train station served by shuttles every few
    minutes; we place the same pair of attractors mid-region.
    """
    return [
        Hotspot("university", Point(width_m * 0.45, height_m * 0.65)),
        Hotspot("rail-station", Point(width_m * 0.55, height_m * 0.35)),
    ]
