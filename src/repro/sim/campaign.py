"""Multi-day sensing campaigns: the paper's two-phase experiment.

§IV-A: the deployment ran for two months.  In the first (sparse) phase
the 22 participants rode buses as they normally would, yielding limited
data concentrated on frequently taken routes; for evaluation the
authors then incentivised intensive riding for 19 days.

:class:`Campaign` runs a :class:`~repro.sim.world.World` over many
service days with per-phase participation rates, keeps the backend
state across days (the fingerprint database and fused map carry over),
and aggregates per-day statistics.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.logging import get_logger, log_event
from repro.util.units import SECONDS_PER_DAY, parse_hhmm

if TYPE_CHECKING:  # imported lazily to avoid a package-init cycle
    from repro.sim.world import SimulationResult, World

_log = get_logger(__name__)


@dataclass(frozen=True)
class CampaignPhase:
    """One phase of a campaign: a number of days at a participation rate."""

    name: str
    days: int
    participation_rate: float
    route_ids: Optional[Tuple[str, ...]] = None   # None: all routes

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("a phase needs at least one day")
        if not 0.0 < self.participation_rate <= 1.0:
            raise ValueError("participation rate must be in (0, 1]")


@dataclass
class DayStats:
    """What one service day produced."""

    day_index: int
    phase: str
    bus_trips: int
    uploads: int
    trips_mapped: int
    segments_updated: int
    map_coverage: float


@dataclass
class CampaignResult:
    """Aggregated outcome of a multi-day campaign.

    ``days`` covers every service day, including days recovered from a
    durable store on resume; ``day_results`` holds the
    :class:`SimulationResult` of days actually (re-)simulated in this
    process — recovered days have no in-memory simulation to return.
    """

    world: World
    days: List[DayStats]
    day_results: List[SimulationResult]

    def phase_days(self, phase_name: str) -> List[DayStats]:
        """Per-day stats of one phase."""
        return [d for d in self.days if d.phase == phase_name]

    def uploads_per_day(self, phase_name: str) -> float:
        """Mean uploads per day within a phase."""
        days = self.phase_days(phase_name)
        if not days:
            raise KeyError(f"no days in phase {phase_name!r}")
        return float(np.mean([d.uploads for d in days]))


class Campaign:
    """Runs a world through consecutive service days."""

    def __init__(
        self,
        world: World,
        start: str = "07:00",
        end: str = "20:00",
        headway_s: Optional[float] = None,
        with_official_feed: bool = False,
        workers: int = 1,
    ):
        self.world = world
        self.start_s = parse_hhmm(start)
        self.end_s = parse_hhmm(end)
        self.headway_s = headway_s
        self.with_official_feed = with_official_feed
        self.workers = workers

    def run(
        self, phases: Sequence[CampaignPhase], *, resume: bool = False
    ) -> CampaignResult:
        """Execute the phases back to back; backend state persists.

        With a durable store attached to the world's server, every day
        is bracketed by ``day_start`` / ``day_end`` WAL markers and the
        server snapshots at day boundaries (``store_snapshot_every``
        cadence).  ``resume=True`` restores the latest snapshot, replays
        the WAL tail, and continues exactly where a killed run stopped —
        including mid-day, by re-simulating the interrupted day and
        skipping the event prefix already recovered from the WAL.
        """
        if not phases:
            raise ValueError("campaign needs at least one phase")
        server = self.world.server
        journaling = server.is_journaling
        if resume and not journaling:
            raise ValueError(
                "resume requires a durable store (repro campaign --store)"
            )
        #: The flat day plan: (day index, phase) in execution order.
        plan: List[Tuple[int, CampaignPhase]] = []
        for phase in phases:
            for _ in range(phase.days):
                plan.append((len(plan), phase))
        if journaling:
            self._check_meta(phases, resume=resume)
        base_riders = self.world.config.riders
        days: List[DayStats] = []
        results: List[SimulationResult] = []
        first_day = 0
        skip_events = 0
        day_start_journaled = False
        prev_stats = _StatsSnapshot.capture(self.world)
        if resume:
            recovered = self._recover()
            days.extend(recovered.completed)
            first_day = recovered.next_day
            skip_events = recovered.skip_events
            day_start_journaled = recovered.mid_day
            prev_stats = recovered.prev_stats
            if first_day > len(plan):
                raise ValueError(
                    f"store already holds {first_day} campaign days but "
                    f"the plan has only {len(plan)}"
                )
        try:
            for day_index, phase in plan[first_day:]:
                self.world.config = dataclasses.replace(
                    self.world.config,
                    riders=dataclasses.replace(
                        base_riders,
                        participation_rate=phase.participation_rate,
                    ),
                )
                offset = day_index * SECONDS_PER_DAY
                if not day_start_journaled:
                    # Journaled before any day event: carries everything
                    # a resume needs to re-enter this day — the rider-id
                    # counter position and the cumulative stats that seed
                    # the per-day deltas.
                    server.journal_marker(
                        "day_start",
                        day=day_index,
                        phase=phase.name,
                        rider_next=self.world.rider_counter.value,
                        start_s=self.start_s + offset,
                        end_s=self.end_s + offset,
                        stats={
                            "trips_received": prev_stats.trips_received,
                            "trips_mapped": prev_stats.trips_mapped,
                            "segments_updated": prev_stats.segments_updated,
                        },
                    )
                day_start_journaled = False
                with self.world.tracer.span("campaign_day"):
                    result = self.world.run(
                        self.start_s + offset,
                        self.end_s + offset,
                        route_ids=phase.route_ids,
                        headway_s=self.headway_s,
                        with_official_feed=self.with_official_feed,
                        workers=self.workers,
                        skip_events=skip_events,
                    )
                skip_events = 0
                results.append(result)
                snapshot = self.world.server.traffic_map.published_snapshot(
                    self.end_s + offset
                )
                current = _StatsSnapshot.capture(self.world)
                day = DayStats(
                    day_index=day_index,
                    phase=phase.name,
                    bus_trips=len(result.traces),
                    uploads=current.trips_received - prev_stats.trips_received,
                    trips_mapped=current.trips_mapped - prev_stats.trips_mapped,
                    segments_updated=(
                        current.segments_updated - prev_stats.segments_updated
                    ),
                    map_coverage=snapshot.coverage,
                )
                days.append(day)
                server.journal_marker(
                    "day_end",
                    day=day_index,
                    phase=phase.name,
                    rider_next=self.world.rider_counter.value,
                    stats={
                        "bus_trips": day.bus_trips,
                        "uploads": day.uploads,
                        "trips_mapped": day.trips_mapped,
                        "segments_updated": day.segments_updated,
                        "map_coverage": day.map_coverage,
                    },
                )
                self._count_day(day)
                # Day boundaries are the campaign's only quiescent
                # points (see BackendServer.maybe_snapshot); the cadence
                # decides whether this boundary actually snapshots.
                server.maybe_snapshot()
                freshness = self.world.server.freshness.report(
                    self.end_s + offset
                )
                stale_routes = sorted(
                    route_id
                    for route_id, entry in freshness["routes"].items()
                    if not entry["covered_segments"]
                )
                log_event(
                    _log, "campaign_day",
                    day_index=day.day_index, phase=day.phase,
                    bus_trips=day.bus_trips, uploads=day.uploads,
                    trips_mapped=day.trips_mapped,
                    segments_updated=day.segments_updated,
                    map_coverage=round(day.map_coverage, 4),
                    uncovered_routes=len(stale_routes),
                )
                prev_stats = current
        finally:
            self.world.config = dataclasses.replace(
                self.world.config, riders=base_riders
            )
        return CampaignResult(world=self.world, days=days, day_results=results)

    # -- durable-store plumbing ----------------------------------------------

    def _fingerprint(self, phases: Sequence[CampaignPhase]) -> str:
        """Canonical identity of this campaign's configuration.

        Everything that shapes the deterministic event stream is in;
        ``workers`` is deliberately out — worker count never changes
        results (the parity guarantee), so a campaign may resume at a
        different parallelism than it started with.
        """
        doc = {
            "v": 1,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "headway_s": self.headway_s,
            "seed": self.world.seed,
            "phases": [
                {
                    "name": phase.name,
                    "days": phase.days,
                    "participation_rate": phase.participation_rate,
                    "route_ids": (
                        list(phase.route_ids)
                        if phase.route_ids is not None else None
                    ),
                }
                for phase in phases
            ],
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    def _check_meta(
        self, phases: Sequence[CampaignPhase], *, resume: bool
    ) -> None:
        store = self.world.server.store
        fingerprint = self._fingerprint(phases)
        existing = store.get_meta("campaign")
        if not resume:
            if existing is not None or store.last_seq() > 0:
                raise ValueError(
                    "store already holds campaign state; resume it "
                    "(repro campaign --resume) or point --store at a "
                    "fresh path"
                )
        elif existing is not None and existing != fingerprint:
            raise ValueError(
                "campaign configuration does not match the store; a "
                "resume must use the original phases, schedule and seed"
            )
        store.set_meta("campaign", fingerprint)

    def _count_day(self, day: DayStats) -> None:
        """Increment the campaign telemetry counters for one day."""
        self.world.registry.counter(
            "campaign_days_total", help="campaign service days simulated"
        ).inc()
        self.world.registry.labeled_counter(
            "campaign_days_by_phase_total", ("phase",),
            help="campaign service days simulated per phase",
        ).labels(day.phase).inc()
        self.world.registry.labeled_counter(
            "campaign_uploads_total", ("phase",),
            help="trip uploads received per campaign phase",
        ).labels(day.phase).inc(day.uploads)

    def _recover(self) -> "_Recovered":
        """Restore snapshot + replay the WAL; returns where to continue.

        One pass over the full WAL does double duty: the server replays
        every record above its restored watermark (idempotently skipping
        the rest), while the campaign reads the ``day_start``/``day_end``
        markers for day bookkeeping — completed :class:`DayStats`, the
        rider-counter position, and how many events of a half-finished
        day are already applied (the ``skip_events`` for its re-run).
        Campaign counters for day ends *above* the watermark are
        re-incremented here; those below it are already inside the
        restored registry.
        """
        server = self.world.server
        server.load_snapshot()
        completed: List[DayStats] = []
        open_day: Optional[Dict] = None
        open_events = 0
        rider_next = 0
        replayed = 0
        for record in server.store.wal_records():
            live = server.replay_record(record)
            replayed += int(live)
            kind = record.get("kind")
            if kind == "day_start":
                open_day = record
                open_events = 0
            elif kind == "day_end":
                stats = record["stats"]
                day = DayStats(
                    day_index=int(record["day"]),
                    phase=str(record["phase"]),
                    bus_trips=int(stats["bus_trips"]),
                    uploads=int(stats["uploads"]),
                    trips_mapped=int(stats["trips_mapped"]),
                    segments_updated=int(stats["segments_updated"]),
                    map_coverage=float(stats["map_coverage"]),
                )
                completed.append(day)
                rider_next = int(record["rider_next"])
                open_day = None
                open_events = 0
                if live:
                    self._count_day(day)
            elif open_day is not None:
                open_events += 1
        if open_day is not None:
            # Crashed mid-day: re-enter the day with the rider counter
            # and stats baseline it started with; the re-simulated event
            # stream skips the prefix the WAL already covered.
            self.world.rider_counter.reset(int(open_day["rider_next"]))
            stats = open_day["stats"]
            log_event(
                _log, "campaign_resume",
                completed_days=len(completed),
                resume_day=int(open_day["day"]),
                replayed_records=replayed,
                skip_events=open_events,
            )
            return _Recovered(
                completed=completed,
                next_day=int(open_day["day"]),
                skip_events=open_events,
                mid_day=True,
                prev_stats=_StatsSnapshot(
                    trips_received=int(stats["trips_received"]),
                    trips_mapped=int(stats["trips_mapped"]),
                    segments_updated=int(stats["segments_updated"]),
                ),
            )
        self.world.rider_counter.reset(rider_next)
        log_event(
            _log, "campaign_resume",
            completed_days=len(completed),
            resume_day=len(completed),
            replayed_records=replayed,
            skip_events=0,
        )
        return _Recovered(
            completed=completed,
            next_day=len(completed),
            skip_events=0,
            mid_day=False,
            prev_stats=_StatsSnapshot.capture(self.world),
        )


@dataclass(frozen=True)
class _Recovered:
    """What :meth:`Campaign._recover` pieced back together."""

    completed: List[DayStats]
    next_day: int
    skip_events: int
    mid_day: bool
    prev_stats: "_StatsSnapshot"


@dataclass(frozen=True)
class _StatsSnapshot:
    trips_received: int
    trips_mapped: int
    segments_updated: int

    @classmethod
    def capture(cls, world: World) -> "_StatsSnapshot":
        stats = world.server.stats
        return cls(
            trips_received=stats.trips_received,
            trips_mapped=stats.trips_mapped,
            segments_updated=stats.segments_updated,
        )
