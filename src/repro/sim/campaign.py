"""Multi-day sensing campaigns: the paper's two-phase experiment.

§IV-A: the deployment ran for two months.  In the first (sparse) phase
the 22 participants rode buses as they normally would, yielding limited
data concentrated on frequently taken routes; for evaluation the
authors then incentivised intensive riding for 19 days.

:class:`Campaign` runs a :class:`~repro.sim.world.World` over many
service days with per-phase participation rates, keeps the backend
state across days (the fingerprint database and fused map carry over),
and aggregates per-day statistics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.logging import get_logger, log_event
from repro.util.units import SECONDS_PER_DAY, parse_hhmm

if TYPE_CHECKING:  # imported lazily to avoid a package-init cycle
    from repro.sim.world import SimulationResult, World

_log = get_logger(__name__)


@dataclass(frozen=True)
class CampaignPhase:
    """One phase of a campaign: a number of days at a participation rate."""

    name: str
    days: int
    participation_rate: float
    route_ids: Optional[Tuple[str, ...]] = None   # None: all routes

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("a phase needs at least one day")
        if not 0.0 < self.participation_rate <= 1.0:
            raise ValueError("participation rate must be in (0, 1]")


@dataclass
class DayStats:
    """What one service day produced."""

    day_index: int
    phase: str
    bus_trips: int
    uploads: int
    trips_mapped: int
    segments_updated: int
    map_coverage: float


@dataclass
class CampaignResult:
    """Aggregated outcome of a multi-day campaign."""

    world: World
    days: List[DayStats]
    day_results: List[SimulationResult]

    def phase_days(self, phase_name: str) -> List[DayStats]:
        """Per-day stats of one phase."""
        return [d for d in self.days if d.phase == phase_name]

    def uploads_per_day(self, phase_name: str) -> float:
        """Mean uploads per day within a phase."""
        days = self.phase_days(phase_name)
        if not days:
            raise KeyError(f"no days in phase {phase_name!r}")
        return float(np.mean([d.uploads for d in days]))


class Campaign:
    """Runs a world through consecutive service days."""

    def __init__(
        self,
        world: World,
        start: str = "07:00",
        end: str = "20:00",
        headway_s: Optional[float] = None,
        with_official_feed: bool = False,
        workers: int = 1,
    ):
        self.world = world
        self.start_s = parse_hhmm(start)
        self.end_s = parse_hhmm(end)
        self.headway_s = headway_s
        self.with_official_feed = with_official_feed
        self.workers = workers

    def run(self, phases: Sequence[CampaignPhase]) -> CampaignResult:
        """Execute the phases back to back; backend state persists."""
        if not phases:
            raise ValueError("campaign needs at least one phase")
        base_riders = self.world.config.riders
        days: List[DayStats] = []
        results: List[SimulationResult] = []
        day_index = 0
        prev_stats = _StatsSnapshot.capture(self.world)
        for phase in phases:
            self.world.config = dataclasses.replace(
                self.world.config,
                riders=dataclasses.replace(
                    base_riders, participation_rate=phase.participation_rate
                ),
            )
            for _ in range(phase.days):
                offset = day_index * SECONDS_PER_DAY
                with self.world.tracer.span("campaign_day"):
                    result = self.world.run(
                        self.start_s + offset,
                        self.end_s + offset,
                        route_ids=phase.route_ids,
                        headway_s=self.headway_s,
                        with_official_feed=self.with_official_feed,
                        workers=self.workers,
                    )
                results.append(result)
                snapshot = self.world.server.traffic_map.published_snapshot(
                    self.end_s + offset
                )
                current = _StatsSnapshot.capture(self.world)
                day = DayStats(
                    day_index=day_index,
                    phase=phase.name,
                    bus_trips=len(result.traces),
                    uploads=current.trips_received - prev_stats.trips_received,
                    trips_mapped=current.trips_mapped - prev_stats.trips_mapped,
                    segments_updated=(
                        current.segments_updated - prev_stats.segments_updated
                    ),
                    map_coverage=snapshot.coverage,
                )
                days.append(day)
                self.world.registry.counter(
                    "campaign_days_total", help="campaign service days simulated"
                ).inc()
                self.world.registry.labeled_counter(
                    "campaign_days_by_phase_total", ("phase",),
                    help="campaign service days simulated per phase",
                ).labels(phase.name).inc()
                self.world.registry.labeled_counter(
                    "campaign_uploads_total", ("phase",),
                    help="trip uploads received per campaign phase",
                ).labels(phase.name).inc(day.uploads)
                freshness = self.world.server.freshness.report(
                    self.end_s + offset
                )
                stale_routes = sorted(
                    route_id
                    for route_id, entry in freshness["routes"].items()
                    if not entry["covered_segments"]
                )
                log_event(
                    _log, "campaign_day",
                    day_index=day.day_index, phase=day.phase,
                    bus_trips=day.bus_trips, uploads=day.uploads,
                    trips_mapped=day.trips_mapped,
                    segments_updated=day.segments_updated,
                    map_coverage=round(day.map_coverage, 4),
                    uncovered_routes=len(stale_routes),
                )
                prev_stats = current
                day_index += 1
        self.world.config = dataclasses.replace(
            self.world.config, riders=base_riders
        )
        return CampaignResult(world=self.world, days=days, day_results=results)


@dataclass(frozen=True)
class _StatsSnapshot:
    trips_received: int
    trips_mapped: int
    segments_updated: int

    @classmethod
    def capture(cls, world: World) -> "_StatsSnapshot":
        stats = world.server.stats
        return cls(
            trips_received=stats.trips_received,
            trips_mapped=stats.trips_mapped,
            segments_updated=stats.segments_updated,
        )
