#!/usr/bin/env python
"""Line-coverage no-regression gate for CI.

Three modes, all operating on the ``coverage json`` document format
(``{"totals": {"percent_covered": ...}}``):

* ``check <coverage.json>`` — compare against the committed baseline
  ``benchmarks/reports/coverage_baseline.json``; exit 1 if line
  coverage dropped more than :data:`TOLERANCE_PCT` points below it.
* ``record <coverage.json>`` — rewrite the baseline from a measured
  document (run after an intentional coverage change, commit the
  result and say why).
* ``measure [--out FILE]`` — measure tier-1 line coverage with the
  standard library only (``sys.settrace`` + code-object line tables)
  and write a compatible document.  For environments without
  ``pytest-cov``; CI uses the real thing:

      pytest --cov=repro --cov-report=json:coverage.json
      python scripts/coverage_gate.py check coverage.json

The stdlib tracer undercounts slightly (lines hit only inside
multiprocessing workers are invisible to it), so a baseline recorded
from ``measure`` carries a small built-in safety margin; re-record from
a pytest-cov document when one is available to tighten the gate.
"""

import argparse
import json
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC_ROOT = os.path.join(REPO_ROOT, "src")
PACKAGE_ROOT = os.path.join(SRC_ROOT, "repro")
BASELINE_PATH = os.path.join(
    REPO_ROOT, "benchmarks", "reports", "coverage_baseline.json"
)

#: Allowed drop (in percentage points) below the recorded baseline.
TOLERANCE_PCT = 1.0

#: Extra slack subtracted when *recording* from the stdlib tracer, to
#: absorb the measurement-tool difference vs pytest-cov.
STDLIB_RECORD_MARGIN_PCT = 2.0


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _percent(document) -> float:
    try:
        return float(document["totals"]["percent_covered"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(
            f"not a coverage JSON document (missing totals.percent_covered): "
            f"{exc}"
        )


def cmd_check(args) -> int:
    measured = _percent(_load(args.coverage_json))
    if not os.path.exists(BASELINE_PATH):
        print(f"no baseline at {BASELINE_PATH} — record one first:\n"
              f"  python scripts/coverage_gate.py record {args.coverage_json}",
              file=sys.stderr)
        return 1
    baseline = _load(BASELINE_PATH)
    floor = float(baseline["percent_covered"]) - TOLERANCE_PCT
    verdict = "ok" if measured >= floor else "REGRESSION"
    print(f"coverage {verdict}: measured {measured:.2f}% vs baseline "
          f"{baseline['percent_covered']:.2f}% "
          f"(floor {floor:.2f}%, tolerance {TOLERANCE_PCT}pp)")
    if measured < floor:
        print("line coverage regressed — add tests, or re-record the "
              "baseline if the drop is intentional:\n"
              f"  python scripts/coverage_gate.py record {args.coverage_json}",
              file=sys.stderr)
        return 1
    return 0


def cmd_record(args) -> int:
    document = _load(args.coverage_json)
    measured = _percent(document)
    tool = (document.get("meta") or {}).get("tool", "pytest-cov")
    recorded = measured
    if tool == "stdlib-trace":
        recorded = max(0.0, measured - STDLIB_RECORD_MARGIN_PCT)
    baseline = {
        "percent_covered": round(recorded, 2),
        "measured_percent": round(measured, 2),
        "tolerance_pct": TOLERANCE_PCT,
        "recorded_with": tool,
        "note": (
            "Line coverage of `pytest -x -q` (tier-1) over src/repro. "
            "Gate: scripts/coverage_gate.py check fails if measured < "
            "percent_covered - tolerance_pct."
            + (
                f" Recorded from the stdlib tracer with a "
                f"{STDLIB_RECORD_MARGIN_PCT}pp cross-tool margin; "
                f"re-record from a pytest-cov document to tighten."
                if tool == "stdlib-trace" else ""
            )
        ),
    }
    os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
    with open(BASELINE_PATH, "w", encoding="utf-8") as out:
        json.dump(baseline, out, indent=2)
        out.write("\n")
    print(f"recorded baseline {baseline['percent_covered']:.2f}% "
          f"({tool}) -> {BASELINE_PATH}")
    return 0


# -- stdlib measurement --------------------------------------------------------


def _executable_lines(path):
    """Line numbers the compiler marks executable, via code-object tables."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        top = compile(source, path, "exec")
    except SyntaxError:
        return set()
    lines = set()
    stack = [top]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # The compiler attributes module/class/function *definitions* here
    # too; that matches what tracing reports, so no filtering needed.
    return lines


def cmd_measure(args) -> int:
    sys.path.insert(0, SRC_ROOT)
    import threading

    prefix = PACKAGE_ROOT + os.sep
    hits = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None                       # no line events for this frame
        if event == "line":
            hits.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        import pytest
        exit_code = pytest.main(["-x", "-q", "-p", "no:cacheprovider"])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest exited {exit_code}; refusing to report coverage "
              "of a failing suite", file=sys.stderr)
        return int(exit_code)

    total_executable = 0
    total_hit = 0
    files = {}
    for dirpath, _, filenames in os.walk(PACKAGE_ROOT):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            executable = _executable_lines(path)
            hit = hits.get(path, set()) & executable
            total_executable += len(executable)
            total_hit += len(hit)
            rel = os.path.relpath(path, REPO_ROOT)
            files[rel] = {
                "num_statements": len(executable),
                "covered_lines": len(hit),
                "percent_covered": (
                    100.0 * len(hit) / len(executable) if executable else 100.0
                ),
            }
    percent = 100.0 * total_hit / total_executable if total_executable else 0.0
    document = {
        "meta": {"tool": "stdlib-trace"},
        "totals": {
            "percent_covered": round(percent, 2),
            "num_statements": total_executable,
            "covered_lines": total_hit,
        },
        "files": files,
    }
    with open(args.out, "w", encoding="utf-8") as out:
        json.dump(document, out, indent=2)
        out.write("\n")
    print(f"measured {percent:.2f}% line coverage "
          f"({total_hit}/{total_executable} lines) -> {args.out}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)
    check = sub.add_parser("check", help="gate against the baseline")
    check.add_argument("coverage_json")
    record = sub.add_parser("record", help="rewrite the baseline")
    record.add_argument("coverage_json")
    measure = sub.add_parser("measure", help="stdlib-only measurement")
    measure.add_argument("--out", default="coverage.json")
    args = parser.parse_args()
    return {"check": cmd_check, "record": cmd_record,
            "measure": cmd_measure}[args.mode](args)


if __name__ == "__main__":
    sys.exit(main())
