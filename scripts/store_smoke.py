#!/usr/bin/env python
"""CI durability smoke: SIGKILL a stored campaign, resume it, diff.

For each worker count (1 and 2) this driver:

1. runs the reference campaign straight through (no store) and keeps
   its golden trace;
2. runs the same campaign with ``--store``, with a ``REPRO_FAULT``
   fault point armed so the process SIGKILLs itself mid-WAL-append —
   leaving a torn frame on disk;
3. resumes with ``--resume`` and renders the recovered golden trace;
4. byte-compares the two traces.

Any divergence writes a unified diff to
``benchmarks/reports/store_golden_diff.txt`` (uploaded as a CI
artifact) and exits nonzero.  The verdict summary goes to
``benchmarks/reports/store_smoke.json``.

Run from the repo root::

    python scripts/store_smoke.py
"""

import difflib
import json
import os
import subprocess
import sys
import tempfile

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
REPORT_DIR = os.path.join(ROOT, "benchmarks", "reports")
DIFF_PATH = os.path.join(REPORT_DIR, "store_golden_diff.txt")
REPORT_PATH = os.path.join(REPORT_DIR, "store_smoke.json")

CAMPAIGN = [
    "--sparse-days", "1", "--intensive-days", "1",
    "--start", "07:30", "--end", "08:00",
    "--headway", "900", "--seed", "3",
]
#: Dies between the WAL frame header and payload — a torn record.
FAULT = "wal_append:30"


def run_campaign(args, fault=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    env.pop("REPRO_FAULT", None)
    if fault:
        env["REPRO_FAULT"] = fault
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "campaign", *CAMPAIGN, *args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )


def check_workers(workers, tmp):
    tag = f"workers{workers}"
    base_path = os.path.join(tmp, f"base-{tag}.json")
    resumed_path = os.path.join(tmp, f"resumed-{tag}.json")
    store = os.path.join(tmp, f"store-{tag}")
    flags = ["--workers", str(workers)]

    proc = run_campaign([*flags, "--golden-out", base_path])
    if proc.returncode != 0:
        raise SystemExit(f"baseline {tag} failed:\n{proc.stderr}")

    killed = run_campaign([*flags, "--store", store], fault=FAULT)
    if killed.returncode != -9:
        raise SystemExit(
            f"{tag}: fault {FAULT} did not SIGKILL the campaign "
            f"(rc={killed.returncode})\n{killed.stderr}"
        )

    proc = run_campaign(
        [*flags, "--store", store, "--resume", "--golden-out", resumed_path]
    )
    if proc.returncode != 0:
        raise SystemExit(f"resume {tag} failed:\n{proc.stderr}")

    with open(base_path, "rb") as f:
        base = f.read()
    with open(resumed_path, "rb") as f:
        resumed = f.read()
    identical = base == resumed
    if not identical:
        with open(DIFF_PATH, "a", encoding="utf-8") as f:
            f.write(f"=== {tag}: resumed vs straight-through ===\n")
            f.writelines(difflib.unified_diff(
                base.decode("utf-8").splitlines(keepends=True),
                resumed.decode("utf-8").splitlines(keepends=True),
                fromfile=f"straight-{tag}", tofile=f"resumed-{tag}",
            ))
    return {
        "workers": workers,
        "fault": FAULT,
        "killed_returncode": killed.returncode,
        "golden_bytes": len(base),
        "byte_identical": identical,
    }


def main():
    os.makedirs(REPORT_DIR, exist_ok=True)
    if os.path.exists(DIFF_PATH):
        os.remove(DIFF_PATH)
    rows = []
    with tempfile.TemporaryDirectory(prefix="store-smoke-") as tmp:
        for workers in (1, 2):
            row = check_workers(workers, tmp)
            rows.append(row)
            verdict = "ok" if row["byte_identical"] else "DIVERGED"
            print(f"workers={workers}: killed at {FAULT}, resumed, "
                  f"golden {row['golden_bytes']} bytes — {verdict}")
    report = {"fault": FAULT, "runs": rows,
              "ok": all(r["byte_identical"] for r in rows)}
    with open(REPORT_PATH, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    if not report["ok"]:
        print(f"resumed trace diverged; diff at {DIFF_PATH}",
              file=sys.stderr)
        return 1
    print("store smoke: resume is byte-identical at workers 1 and 2")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
