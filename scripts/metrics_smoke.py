#!/usr/bin/env python
"""CI scrape smoke: serve a populated registry, curl it, assert parseability.

Starts the embedded exporter on an ephemeral port, fetches ``/healthz``
and ``/metrics`` over real HTTP, asserts the health payload and that the
exposition text round-trips through :func:`parse_prometheus_text`, and
writes the scraped snapshot to ``benchmarks/reports/metrics_snapshot.prom``
so CI can upload it as an artifact.

Run from the repo root::

    PYTHONPATH=src python scripts/metrics_smoke.py

``--hold SECONDS`` keeps the exporter alive after the in-process checks
and writes its bound port to ``--port-file``, so an external client
(CI's curl) can scrape the same endpoints before the script exits.
"""

import argparse
import json
import os
import sys
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import (                                   # noqa: E402
    MetricsHTTPServer,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
)

SNAPSHOT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "reports",
    "metrics_snapshot.prom",
)


def build_registry() -> MetricsRegistry:
    """A registry exercising every instrument kind, escaping included."""
    registry = MetricsRegistry()
    registry.counter("smoke_trips_total", help="uploads ingested").inc(12)
    registry.gauge("smoke_fingerprint_db_stops", help="surveyed stops").set(40)
    registry.histogram(
        "smoke_match_latency_s", buckets=(0.01, 0.1, 1.0), help="match time"
    ).observe(0.05)
    fam = registry.labeled_counter(
        "smoke_route_trips_total", ("route",), help='per-route trips "demo"'
    )
    fam.labels("179-0").inc(7)
    fam.labels('odd"label\\with\nnoise').inc(1)
    registry.labeled_gauge(
        "smoke_route_freshness_s", ("route",), help="staleness per route"
    ).labels("179-0").set(120.5)
    return registry


def fetch(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, dict(response.headers), response.read().decode()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hold", type=float, default=0.0,
                        help="keep the exporter up this long for external "
                             "scrapers (default: exit immediately)")
    parser.add_argument("--port-file", default=os.path.join(
        os.path.dirname(SNAPSHOT_PATH), "metrics_port"))
    args = parser.parse_args()

    registry = build_registry()
    with MetricsHTTPServer(registry, port=0) as exporter:
        status, _, health = fetch(exporter.port, "/healthz")
        assert status == 200, f"/healthz returned {status}"
        payload = json.loads(health)
        assert payload["status"] == "ok", payload

        status, headers, body = fetch(exporter.port, "/metrics")
        assert status == 200, f"/metrics returned {status}"
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE, headers

        if args.hold > 0:
            os.makedirs(os.path.dirname(args.port_file), exist_ok=True)
            with open(args.port_file, "w", encoding="utf-8") as out:
                out.write(str(exporter.port))
            print(f"holding exporter on port {exporter.port} "
                  f"for {args.hold:g}s")
            time.sleep(args.hold)

    families = parse_prometheus_text(body)   # raises ValueError if malformed
    expected = {
        "smoke_trips_total", "smoke_fingerprint_db_stops",
        "smoke_match_latency_s", "smoke_route_trips_total",
        "smoke_route_freshness_s",
    }
    missing = expected - set(families)
    assert not missing, f"families missing from scrape: {sorted(missing)}"
    awkward = [
        labels["route"]
        for _, labels, _ in families["smoke_route_trips_total"]["samples"]
    ]
    assert 'odd"label\\with\nnoise' in awkward, awkward

    os.makedirs(os.path.dirname(SNAPSHOT_PATH), exist_ok=True)
    with open(SNAPSHOT_PATH, "w", encoding="utf-8") as out:
        out.write(body)
    print(f"scraped {len(families)} families; wrote {SNAPSHOT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
