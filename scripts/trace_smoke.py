#!/usr/bin/env python
"""CI trace smoke: traced parallel campaign → Chrome trace-event checks.

Runs a tiny two-worker campaign with ``--trace-out``, then asserts the
exported document is a well-formed Chrome trace-event file (required
keys, monotonic timestamps, matched B/E or X events via
:func:`validate_chrome_trace`), that every IPC accounting span the
tracer promises is present, that worker spans stitched into the
coordinator's trace, and that ``repro trace`` renders a summary with
the IPC-vs-compute split.  The trace lands in
``benchmarks/reports/trace_smoke.json`` for CI to upload — load it in
Perfetto / ``chrome://tracing`` to eyeball a failing run.

Run from the repo root::

    PYTHONPATH=src python scripts/trace_smoke.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main                                # noqa: E402
from repro.obs import (                                   # noqa: E402
    summarize_chrome_trace,
    validate_chrome_trace,
)

TRACE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "reports",
    "trace_smoke.json",
)

#: Spans the engine must account for on a parallel traced run.
REQUIRED_SPANS = {
    "ingest",
    "prepare_trip",
    "ingest_merge",
    "fingerprint_broadcast",
    "shard_serialize",
    "shard_deserialize",
    "pool_queue_wait",
    "pool_result_wait",
    "result_merge",
    "matching",
}


def run_campaign() -> None:
    os.makedirs(os.path.dirname(TRACE_PATH), exist_ok=True)
    code = main([
        "campaign",
        "--sparse-days", "1", "--intensive-days", "0",
        "--start", "07:30", "--end", "08:00",
        "--workers", "2",
        "--trace-out", TRACE_PATH,
    ])
    assert code == 0, f"traced campaign exited {code}"


def check_document() -> dict:
    with open(TRACE_PATH, encoding="utf-8") as handle:
        document = json.load(handle)

    problems = validate_chrome_trace(document)
    assert not problems, "trace schema problems:\n  " + "\n  ".join(problems)

    events = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert events, "trace contains no complete (X) events"
    names = {e["name"] for e in events}
    missing = REQUIRED_SPANS - names
    assert not missing, f"accounting spans missing: {sorted(missing)}"

    # Worker spans joined the coordinator's trace with a worker label.
    workers = {
        e["args"].get("worker") for e in events if e["args"].get("worker")
    }
    assert workers, "no spans carry a worker label"
    trace_ids = {e["args"]["trace_id"] for e in events}
    assert len(trace_ids) == 1, f"split traces: {sorted(trace_ids)}"

    # Serialization accounting carries byte counts.
    serialized = [e for e in events if e["name"] == "shard_serialize"]
    assert all(e["args"].get("bytes", 0) > 0 for e in serialized), serialized

    return document


def check_summary(document: dict) -> None:
    summary = summarize_chrome_trace(document)
    assert summary["coordinator_coverage"] >= 0.95, (
        f"named spans cover only {summary['coordinator_coverage']:.1%} "
        "of the coordinator wall"
    )
    assert summary["ipc_s"] > 0, summary
    assert summary["compute_s"] > 0, summary
    # And the CLI renders it (also exercises the validate path).
    assert main(["trace", "--validate", TRACE_PATH]) == 0
    assert main(["trace", "--summary", TRACE_PATH]) == 0


def main_smoke() -> int:
    run_campaign()
    document = check_document()
    check_summary(document)
    events = len(document["traceEvents"])
    print(f"trace smoke OK: {events} events, "
          f"all {len(REQUIRED_SPANS)} accounting spans present; "
          f"wrote {TRACE_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main_smoke())
