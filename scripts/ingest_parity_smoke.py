#!/usr/bin/env python
"""CI ingest smoke: `repro campaign --workers 2` must equal `--workers 1`.

Runs the same small two-day campaign twice through the real CLI — once
serial, once through the sharded multiprocessing ingest engine — and
asserts the server pipeline counters and the shared matcher/clustering
telemetry are identical.  Any scheduling-, pickling- or merge-order bug
in the parallel path shows up here as a counter diff.

Two regressions ride shotgun: every deterministic *gauge* must also
match between the runs (worker snapshots used to clobber the
coordinator's levels — only the quarantined ``ingest_*``/``match_*``
physical families may differ), and the parallel run must not leak any
``repro-fp-*`` shared-memory fingerprint segments in ``/dev/shm``.

Writes both metrics documents plus a parity verdict to
``benchmarks/reports/`` so CI can upload them as artifacts.

Run from the repo root::

    PYTHONPATH=src python scripts/ingest_parity_smoke.py
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main as repro_main                  # noqa: E402
from repro.core.shared_store import active_segments       # noqa: E402

REPORT_DIR = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "reports"
)

#: Worker-side telemetry that must merge back to the exact serial totals.
SHARED_COUNTERS = (
    "matcher_samples_total",
    "matcher_samples_accepted",
    "matcher_pairs_scored",
    "clustering_samples_total",
    "clustering_clusters_total",
    "trip_mapping_attempts",
    "trip_mapping_mapped",
)

#: Gauge families allowed to differ between serial and parallel runs:
#: engine plumbing only exists in the parallel run, and match_* levels
#: are per-process physical state (the coordinator's own matcher does
#: no work when an engine is attached, so its levels legitimately
#: differ — the bug was workers *overwriting* them, which the
#: quarantine in IngestEngine.prepare now prevents).
VOLATILE_GAUGE_PREFIXES = ("ingest_", "match_")


def run_campaign(workers: int) -> dict:
    out = os.path.join(REPORT_DIR, f"ingest_smoke_w{workers}.json")
    code = repro_main([
        "campaign",
        "--sparse-days", "1", "--intensive-days", "1",
        "--start", "07:30", "--end", "08:15",
        "--seed", "7",
        "--workers", str(workers),
        "--metrics-out", out,
    ])
    assert code == 0, f"repro campaign --workers {workers} exited {code}"
    with open(out, encoding="utf-8") as handle:
        return json.load(handle)


def main() -> int:
    os.makedirs(REPORT_DIR, exist_ok=True)
    serial = run_campaign(1)
    parallel = run_campaign(2)

    problems = []
    if serial["stats"] != parallel["stats"]:
        problems.append(
            f"server stats diverged:\n  serial:   {serial['stats']}"
            f"\n  parallel: {parallel['stats']}"
        )
    for name in SHARED_COUNTERS:
        a = serial["metrics"]["counters"].get(name)
        b = parallel["metrics"]["counters"].get(name)
        if a != b:
            problems.append(f"counter {name}: serial={a} parallel={b}")
    if "ingest_batches_total" not in parallel["metrics"]["counters"]:
        problems.append("parallel run recorded no ingest_* engine metrics")

    gauges = set(serial["metrics"]["gauges"]) | set(
        parallel["metrics"]["gauges"]
    )
    for name in sorted(gauges):
        if name.startswith(VOLATILE_GAUGE_PREFIXES):
            continue
        a = serial["metrics"]["gauges"].get(name)
        b = parallel["metrics"]["gauges"].get(name)
        if a != b:
            problems.append(f"gauge {name}: serial={a} parallel={b}")

    leaked = active_segments()
    if leaked:
        problems.append(f"leaked /dev/shm fingerprint segments: {leaked}")

    verdict = {
        "parity": not problems,
        "problems": problems,
        "stats": serial["stats"],
    }
    with open(
        os.path.join(REPORT_DIR, "ingest_parity.json"), "w", encoding="utf-8"
    ) as out:
        json.dump(verdict, out, indent=2)

    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    checked = sum(
        1 for name in gauges if not name.startswith(VOLATILE_GAUGE_PREFIXES)
    )
    print(f"parity ok: --workers 2 == --workers 1 over "
          f"{serial['stats']['trips_received']} uploads "
          f"({len(SHARED_COUNTERS)} shared counters, {checked} gauges, "
          f"no leaked shm segments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
