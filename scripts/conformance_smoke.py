#!/usr/bin/env python
"""CI conformance smoke: oracles + golden trace, with diff artifacts.

Runs the full conformance suite in-process — ``--scenarios`` randomized
differential scenarios per estimator against the spec-literal oracles,
then the golden end-to-end campaign replayed at workers 1/2/4 and
byte-compared to the committed ``tests/golden/campaign_small.json``.

Always writes two artifacts to ``benchmarks/reports/`` for CI upload:

* ``conformance_report.json`` — the machine-readable verdict.
* ``golden_diff.txt`` — structural diff lines on golden mismatch
  (empty when every worker count is byte-identical).

Run from the repo root::

    PYTHONPATH=src python scripts/conformance_smoke.py [--scenarios N]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.testkit.conformance import run_conformance     # noqa: E402

REPORT_DIR = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "reports"
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", type=int, default=25,
                        help="randomized scenarios per estimator")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, nargs="*", default=(1, 2, 4))
    args = parser.parse_args()

    os.makedirs(REPORT_DIR, exist_ok=True)
    report = run_conformance(
        scenarios=args.scenarios,
        seed=args.seed,
        worker_counts=tuple(args.workers),
    )
    print(report.summary())

    with open(
        os.path.join(REPORT_DIR, "conformance_report.json"),
        "w", encoding="utf-8",
    ) as out:
        json.dump(report.as_dict(), out, indent=2)

    diff_lines = [
        f"workers={workers}: {line}"
        for workers, lines in sorted(report.golden_results.items())
        for line in lines
    ]
    with open(
        os.path.join(REPORT_DIR, "golden_diff.txt"), "w", encoding="utf-8"
    ) as out:
        out.write("\n".join(diff_lines) + ("\n" if diff_lines else ""))

    if not report.ok:
        print("conformance FAILED — see golden_diff.txt / "
              "conformance_report.json", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
