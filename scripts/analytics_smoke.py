#!/usr/bin/env python
"""CI fleet-analytics smoke: run a small campaign, scrape its telemetry.

Runs a short campaign with the fleet-health stage enabled and a live
exporter, fetches ``/metrics`` and ``/fleet`` over real HTTP, asserts
the headway / bunching / ghost families are present and non-empty in
the Prometheus exposition, and writes the fleet-health JSON report to
``benchmarks/reports/fleet_health.json`` so CI can upload it as an
artifact.

Run from the repo root::

    PYTHONPATH=src python scripts/analytics_smoke.py
"""

import argparse
import json
import os
import sys
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import (                                   # noqa: E402
    MetricsHTTPServer,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.sim.world import World                         # noqa: E402
from repro.util.units import parse_hhmm                   # noqa: E402

REPORT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "reports",
    "fleet_health.json",
)

#: Label families the fleet stage must export from any non-trivial run.
REQUIRED_FAMILIES = (
    "headway_seconds",
    "bunching_rate",
    "excess_wait_seconds",
    "ghost_vehicles",
    "ghost_last_seen_seconds",
    "od_flow_trips",
)


def fetch(port: int, path: str) -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        assert response.status == 200, f"{path} returned {response.status}"
        return response.read().decode()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--start", default="07:30")
    parser.add_argument("--end", default="08:15")
    parser.add_argument("--report-out", default=REPORT_PATH)
    args = parser.parse_args()

    registry = MetricsRegistry()
    world = World(seed=args.seed, registry=registry)
    server = world.server
    assert server.analytics is not None, "fleet stage disabled by default?"

    end_s = parse_hhmm(args.end)
    world.run(parse_hhmm(args.start), end_s, with_official_feed=False)

    with MetricsHTTPServer(
        registry,
        port=0,
        fleet_fn=server.analytics.report,
    ) as exporter:
        exposition = fetch(exporter.port, "/metrics")
        fleet_body = fetch(exporter.port, "/fleet")

    families = parse_prometheus_text(exposition)
    missing = [
        name for name in REQUIRED_FAMILIES
        if not families.get(name, {}).get("samples")
    ]
    assert not missing, f"fleet families missing or empty: {missing}"
    headway_routes = {
        labels["route"]
        for _, labels, _ in families["headway_seconds"]["samples"]
        if labels.get("route") != "_overflow"
    }
    assert headway_routes, "no per-route headway samples scraped"

    fleet = json.loads(fleet_body)
    assert fleet["routes"], "fleet report has no routes"
    assert fleet["od"]["total_trips"] > 0, "fleet report saw no O-D trips"
    busiest = max(
        fleet["routes"].values(), key=lambda row: row["bus_events"]
    )
    assert busiest["bus_events"] > 0, "no bus events in the fleet report"

    report = server.analytics.report(end_s)
    os.makedirs(os.path.dirname(args.report_out), exist_ok=True)
    with open(args.report_out, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2)
    print(f"scraped {len(headway_routes)} routes with headways, "
          f"{fleet['od']['total_trips']} O-D trips; "
          f"wrote {args.report_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
