"""Ablation (§III-C1) — the Smith-Waterman mismatch/gap penalty sweep.

Paper: "We vary the value of mismatch penalty cost from 0.1 to 0.9 and
simulate the matching accuracy.  Choosing 0.3 as the penalty cost gives
the best result."  This bench repeats the sweep over fresh scans of
every stop against the fingerprint database.
"""

import numpy as np

from conftest import BENCH_SEED, report
from repro.config import MatchingConfig
from repro.core.matching import SampleMatcher
from repro.eval.reporting import render_table

PENALTIES = [round(0.1 * k, 1) for k in range(1, 10)]
PAPER_CHOICE = 0.3
SCANS_PER_STOP = 4


def collect_scans(world, rng):
    scans = []
    for station in world.city.registry.stations:
        for rep in range(SCANS_PER_STOP):
            platform = station.stops[rep % len(station.stops)]
            obs = world.scanner.scan(platform.position, rng)
            if len(obs):
                scans.append((station.station_id, obs.tower_ids))
    return scans


def accuracy_at(world, scans, penalty):
    config = MatchingConfig(mismatch_penalty=penalty, gap_penalty=penalty)
    matcher = SampleMatcher(world.database.as_dict(), config)
    results = matcher.match_many([towers for _, towers in scans])
    correct = sum(
        1
        for (truth, _), result in zip(scans, results)
        if result.station_id == truth
    )
    return correct / len(scans)


def test_ablation_mismatch_penalty(benchmark, paper_world):
    rng = np.random.default_rng(BENCH_SEED + 3)
    scans = collect_scans(paper_world, rng)
    accuracies = {p: accuracy_at(paper_world, scans, p) for p in PENALTIES}
    benchmark(accuracy_at, paper_world, scans[:200], PAPER_CHOICE)

    best_penalty = max(accuracies, key=accuracies.get)
    rows = [[p, f"{100 * a:.1f}%"] for p, a in accuracies.items()]
    report(
        "ablation_penalty",
        render_table(
            ["mismatch/gap penalty", "matching accuracy"],
            rows,
            title="§III-C1 ablation — penalty sweep "
                  f"(paper best: {PAPER_CHOICE}; measured best: {best_penalty})",
        ),
    )

    # The paper's choice is at (or indistinguishable from) the optimum.
    assert accuracies[PAPER_CHOICE] >= max(accuracies.values()) - 0.01
    assert accuracies[PAPER_CHOICE] > 0.9
