"""Ablation (§IV-D) — Goertzel vs FFT for beep-band extraction.

Paper: Goertzel is O(K_g·N·M) against the FFT's O(K_f·N·log N) with a
much smaller constant, and switching the app from FFT to Goertzel saved
about 60 mW.  This bench measures the actual per-window extraction
cost of both routes on the paper's 300 ms / 8 kHz windows, checks they
compute the same band power, and prints the op-count and power deltas.
"""

import numpy as np
import pytest

from conftest import BENCH_SEED, report
from repro.config import BeepConfig
from repro.eval.reporting import render_table
from repro.phone.goertzel import (
    fft_band_power,
    fft_op_count,
    goertzel_op_count,
    goertzel_power,
    goertzel_power_vectorized,
)
from repro.phone.power import PowerModel


def goertzel_route(window, sr, freqs):
    return sum(goertzel_power_vectorized(window, sr, f) for f in freqs)


def fft_route(window, sr, freqs):
    return sum(fft_band_power(window, sr, f) for f in freqs)


def test_ablation_goertzel_vs_fft(benchmark, bench_rng):
    config = BeepConfig()
    sr = config.sample_rate_hz
    n = int(config.window_ms / 1000.0 * sr)
    freqs = config.tone_frequencies_hz
    window = bench_rng.standard_normal(n)

    goertzel_result = benchmark(goertzel_route, window, sr, freqs)
    fft_result = fft_route(window, sr, freqs)
    assert goertzel_result == pytest.approx(fft_result, rel=1e-9)

    import timeit

    t_goertzel = timeit.timeit(lambda: goertzel_route(window, sr, freqs), number=300)
    t_fft = timeit.timeit(lambda: fft_route(window, sr, freqs), number=300)

    m = len(freqs)
    rows = [
        ["window samples N", n, n],
        ["target tones M", m, m],
        ["op-count model", f"{goertzel_op_count(n, m):.0f} (K_g·N·M)",
         f"{fft_op_count(n):.0f} (K_f·N·log N)"],
        ["measured time / window (us)", f"{1e6 * t_goertzel / 300:.1f}",
         f"{1e6 * t_fft / 300:.1f}"],
        ["power on the phone (mW)", "10 (mic+Goertzel)", "70 (mic+FFT)"],
    ]
    saving = PowerModel().goertzel_saving_mw()
    report(
        "ablation_goertzel_fft",
        render_table(
            ["quantity", "Goertzel", "FFT"],
            rows,
            title="§IV-D ablation — Goertzel vs FFT band extraction",
        )
        + f"\npower saving from Goertzel: {saving:.0f} mW (paper: ~60 mW)",
    )

    # M = 2 tones << log2(N) ≈ 11: Goertzel's op count must win.
    assert goertzel_op_count(n, m) < fft_op_count(n)
    assert saving == pytest.approx(60.0, abs=10.0)
    # The recurrence form exists and agrees (used on the phone, where
    # numpy-style vectorisation is unavailable).
    assert goertzel_power(window, sr, freqs[0]) == pytest.approx(
        goertzel_power_vectorized(window, sr, freqs[0]), rel=1e-9
    )
