"""Ablation ([27], §I) — bus arrival prediction from the traffic map.

The system's first consumers are the bus riders themselves; the
authors' earlier work predicted bus arrival times.  This bench measures
how well arrival times predicted from the crowd-built traffic map match
the simulated ground truth, as a function of prediction horizon, and
against a timetable baseline that assumes free-flow running.
"""

import itertools

import numpy as np

from conftest import BENCH_SEED, report
from repro.core.arrival import ArrivalPredictor
from repro.eval.reporting import render_table
from repro.sim.bus import BUS_FREE_SPEED_MS, simulate_bus_trip
from repro.util.units import parse_hhmm

N_PROBE_TRIPS = 6
MAX_HORIZON = 8
ANCHOR_ORDER = 4


def run_study(world, day_result):
    """Predict arrivals for fresh morning trips from the day's map."""
    rng = np.random.default_rng(BENCH_SEED + 13)
    predictor = ArrivalPredictor(
        world.city.route_network,
        world.server.traffic_map,
        model=world.config.traffic_model,
    )
    by_horizon = {h: [] for h in range(1, MAX_HORIZON + 1)}
    baseline_by_horizon = {h: [] for h in range(1, MAX_HORIZON + 1)}
    counter = itertools.count()
    for k, route_id in enumerate(("179-0", "243-0", "252-1")):
        route = world.city.route_network.route(route_id)
        for j in range(N_PROBE_TRIPS // 3):
            trace = simulate_bus_trip(
                route,
                parse_hhmm("08:15") + 600.0 * (k + j),
                world.traffic,
                counter,
                rng=rng,
                bus_config=world.config.bus,
                rider_config=world.config.riders,
            )
            anchor = trace.visits[ANCHOR_ORDER]
            predictions = predictor.predict(
                route_id, anchor.station_id, anchor.depart_s, MAX_HORIZON
            )
            actual = {v.stop_order: v.arrival_s for v in trace.visits}
            # Timetable baseline: free bus running + scheduled dwells.
            t_baseline = anchor.depart_s
            for p in predictions:
                truth = actual[p.stop_order]
                by_horizon[p.horizon_stops].append(abs(p.arrival_s - truth))
                distance = route.distance_between(ANCHOR_ORDER, p.stop_order)
                t_free = (
                    anchor.depart_s
                    + distance / BUS_FREE_SPEED_MS
                    + predictor.dwell_s * (p.horizon_stops - 1)
                )
                baseline_by_horizon[p.horizon_stops].append(abs(t_free - truth))
    return by_horizon, baseline_by_horizon


def test_ablation_arrival_prediction(benchmark, paper_world, day_result):
    by_horizon, baseline = benchmark.pedantic(
        run_study, args=(paper_world, day_result), rounds=1, iterations=1
    )

    rows = []
    for horizon in sorted(by_horizon):
        ours = by_horizon[horizon]
        free = baseline[horizon]
        if not ours:
            continue
        rows.append([
            horizon,
            len(ours),
            round(float(np.mean(ours)), 1),
            round(float(np.mean(free)), 1),
        ])
    report(
        "ablation_arrival",
        render_table(
            ["horizon (stops)", "predictions", "map-based MAE (s)",
             "free-flow timetable MAE (s)"],
            rows,
            title="[27] ablation — arrival prediction from the crowd map",
        ),
    )

    all_ours = [e for errs in by_horizon.values() for e in errs]
    all_base = [e for errs in baseline.values() for e in errs]
    # Map-based prediction beats the free-flow timetable during the rush.
    assert float(np.mean(all_ours)) < float(np.mean(all_base))
    # Short-horizon predictions are tight (under a minute at 1-2 stops).
    near = by_horizon[1] + by_horizon[2]
    assert float(np.mean(near)) < 60.0
