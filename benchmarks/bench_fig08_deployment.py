"""Fig. 8 / Fig. 2(a) — the deployment region and its bus routes.

Paper: a 7 km × 4 km (25 km²) region of Jurong West; 8 studied services
covering "a major portion of the road system"; more than 100 bus stops;
80% of roads in the area covered by 2+ routes when all services are
counted (§III-A), and >50% coverage by the 8 studied ones (Fig. 9).
"""

from conftest import report
from repro.city import build_city
from repro.eval.reporting import render_table


def build(spec=None):
    return build_city(spec)


def test_fig08_deployment(benchmark, paper_city):
    city = benchmark.pedantic(build, rounds=1, iterations=1)

    directed_routes = city.route_network.routes
    services = sorted({r.service_name for r in directed_routes})
    route_lengths = {
        s: next(r.length_m for r in directed_routes if r.service_name == s) / 1000.0
        for s in services
    }
    rows = [
        ["region size", "7 km x 4 km (25 km²)", f"{city.spec.width_m/1000:.0f} km x "
         f"{city.spec.height_m/1000:.0f} km ({city.area_km2:.0f} km²)"],
        ["studied services", "8", str(len(services))],
        ["bus stops (stations)", "> 100", str(len(city.registry.stations))],
        ["road coverage by the 8 services", "> 50%",
         f"{100 * city.route_coverage_ratio():.0f}%"],
        ["roads with 2+ services", "(80% with all ~20 routes)",
         f"{100 * city.multi_route_ratio(2):.0f}% with the studied 8"],
    ]
    lengths = "\n".join(
        f"  route {s}: {route_lengths[s]:.1f} km" for s in services
    )
    report(
        "fig08_deployment",
        render_table(
            ["quantity", "paper", "measured"],
            rows,
            title="Fig. 8 — deployment region",
        )
        + "\nroute lengths:\n" + lengths,
    )

    assert city.area_km2 >= 25.0
    assert len(services) == 8
    assert len(city.registry.stations) > 100
    assert city.route_coverage_ratio() > 0.5
