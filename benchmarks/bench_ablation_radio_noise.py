"""Ablation (§III-A) — sensitivity to cellular measurement noise.

The whole design rests on RSS *rank order* being stable enough at a
stop and distinct enough across stops.  The paper argues this
empirically (Fig. 2); here we stress it: sweep the per-measurement
temporal noise of the radio substrate and watch per-sample matching
accuracy — showing both that the operating point has margin and where
the approach would break (heavily fluctuating radio environments).
"""

import dataclasses

import numpy as np

from conftest import BENCH_SEED, report
from repro.config import RadioConfig, SystemConfig
from repro.core import FingerprintDatabase, SampleMatcher
from repro.eval.reporting import render_table
from repro.radio import CellularScanner, PropagationModel, towers_for_city

NOISE_SIGMAS_DB = (0.5, 1.8, 3.0, 5.0, 8.0)
PROBES_PER_STOP = 3


def accuracy_at_noise(city, sigma_db):
    radio = dataclasses.replace(RadioConfig(), temporal_sigma_db=sigma_db)
    towers = towers_for_city(city, seed=BENCH_SEED)
    scanner = CellularScanner(towers, PropagationModel(radio, seed=BENCH_SEED), radio)
    database = FingerprintDatabase.survey(
        city.registry, scanner, samples_per_stop=5,
        rng=np.random.default_rng(BENCH_SEED),
    )
    matcher = SampleMatcher(database.as_dict(), SystemConfig().matching)
    rng = np.random.default_rng(BENCH_SEED + 1)
    total = correct = rejected = 0
    for station in city.registry.stations:
        for rep in range(PROBES_PER_STOP):
            obs = scanner.scan(station.stops[rep % 2].position, rng)
            result = matcher.match(obs.tower_ids)
            total += 1
            if not result.accepted:
                rejected += 1
            elif result.station_id == station.station_id:
                correct += 1
    return correct / total, rejected / total


def test_ablation_radio_noise(benchmark, paper_city):
    results = {
        sigma: accuracy_at_noise(paper_city, sigma) for sigma in NOISE_SIGMAS_DB
    }
    benchmark.pedantic(
        accuracy_at_noise, args=(paper_city, 1.8), rounds=1, iterations=1
    )

    rows = [
        [sigma, f"{100 * acc:.1f}%", f"{100 * rej:.1f}%"]
        for sigma, (acc, rej) in results.items()
    ]
    report(
        "ablation_radio_noise",
        render_table(
            ["temporal RSS noise (dB)", "matching accuracy", "rejected (< γ)"],
            rows,
            title="§III-A ablation — rank-order stability vs radio noise "
                  "(operating point: 1.8 dB)",
        ),
    )

    accuracies = [results[s][0] for s in NOISE_SIGMAS_DB]
    # Monotone degradation with noise, comfortable margin at the
    # operating point, and clear breakdown territory at 8 dB.
    assert all(b <= a + 0.02 for a, b in zip(accuracies, accuracies[1:]))
    assert results[1.8][0] > 0.9
    assert results[8.0][0] < results[0.5][0] - 0.15
