"""Fig. 11 — CDF of the speed difference Δv = |v_T − v_A| by speed class.

Paper (over the 2-month campaign): Δv is lowest (~3–5 km/h) for
low-speed traffic (v_A < 40 km/h), highest (~8–12 km/h) for high-speed
traffic (v_A > 50 km/h), and disperse (~2–10) in between — i.e. the
system is most accurate exactly where it matters (congestion), while
light-traffic comparisons embed the taxi aggressiveness bias.
"""

import numpy as np

from conftest import report
from repro.eval.comparison import collect_speed_differences
from repro.eval.reporting import render_table
from repro.util.units import parse_hhmm

WINDOW_S = 900.0
# The paper's Fig. 11 pools "all road segments and time durations" of the
# campaign — peak hours included, which is where the low-speed class lives.
START = parse_hhmm("07:30")
END = parse_hhmm("19:30")

PAPER_BANDS = {
    "low": (3.0, 5.0),
    "medium": (2.0, 10.0),
    "high": (8.0, 12.0),
}


def run_study(result, segment_ids):
    return collect_speed_differences(
        segment_ids,
        result.server.traffic_map,
        result.official,
        START,
        END,
        window_s=WINDOW_S,
    )


def test_fig11_speed_difference(benchmark, paper_world, day_result):
    segment_ids = sorted(paper_world.city.route_network.covered_segments())
    study = benchmark.pedantic(
        run_study, args=(day_result, segment_ids), rounds=1, iterations=1
    )

    cdfs = study.cdfs()
    rows = []
    for name in ("low", "medium", "high"):
        lo, hi = PAPER_BANDS[name]
        if name in cdfs:
            cdf = cdfs[name]
            rows.append([
                name,
                len(getattr(study, name)),
                f"{lo:.0f}-{hi:.0f}",
                round(cdf.median, 1),
                round(cdf.percentile(25), 1),
                round(cdf.percentile(75), 1),
            ])
        else:
            rows.append([name, 0, f"{lo:.0f}-{hi:.0f}", "-", "-", "-"])
    from repro.eval.figures import ascii_cdf

    report(
        "fig11_speed_diff",
        render_table(
            ["v_A class", "windows", "paper Δv band (km/h)",
             "measured median", "p25", "p75"],
            rows,
            title="Fig. 11 — |v_T − v_A| by speed class "
                  f"({study.total} comparable windows)",
        )
        + "\n\n"
        + ascii_cdf(cdfs, value_label="Δv (km/h)"),
    )

    assert study.total > 2000
    assert "low" in cdfs and "medium" in cdfs
    # Low-speed traffic is where the estimate is tightest; the paper's
    # headline ordering is low < high.
    assert cdfs["low"].median < cdfs["medium"].median + 3.0
    if "high" in cdfs and len(study.high) > 30:
        assert cdfs["low"].median < cdfs["high"].median
        assert 6.0 <= cdfs["high"].median <= 16.0
    # Low class lands in (or near) the paper's 3–5 km/h band.
    assert 1.5 <= cdfs["low"].median <= 7.0
