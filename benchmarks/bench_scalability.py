"""Scalability (§I, §V) — backend throughput as the deployment grows.

The paper highlights "system scalability to support wider monitoring
field" as a design consideration: the backend must keep up as more
riders upload and as the fingerprint database grows to cover more of
the city.  This bench measures

* end-to-end trip ingestion throughput (trips/s and samples/s) on the
  paper-scale database, and
* per-sample matching cost as the database grows from 50 to all stops
  (the inverted index keeps candidates local, so the cost should grow
  far slower than the database).
"""

import itertools

import numpy as np

from conftest import BENCH_SEED, report
from repro.core import BackendServer, FingerprintDatabase, SampleMatcher
from repro.eval.reporting import render_table
from repro.phone import record_participant_trips
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm

DB_SIZES = (50, 100, 172)


def build_workload(world, n_trips=8):
    rng = np.random.default_rng(BENCH_SEED + 15)
    counter = itertools.count()
    uploads = []
    for k in range(n_trips):
        route = world.city.route_network.routes[k % 4]
        trace = simulate_bus_trip(
            route,
            parse_hhmm("08:00") + 600.0 * k,
            world.traffic,
            counter,
            rng=rng,
            bus_config=world.config.bus,
            rider_config=world.config.riders,
        )
        uploads.extend(
            record_participant_trips(
                trace, world.city.registry, world.sampler, world.config, rng=rng
            )
        )
    return uploads


def ingest_all(world, uploads):
    server = BackendServer(
        world.city.network, world.city.route_network, world.database, world.config
    )
    for upload in uploads:
        server.receive_trip(upload)
    return server


def matcher_cost_us(world, db_size, probes):
    station_ids = world.database.station_ids[:db_size]
    database = FingerprintDatabase()
    for station_id in station_ids:
        database.set_fingerprint(station_id, world.database.fingerprint(station_id))
    matcher = SampleMatcher(database.as_dict(), world.config.matching)

    import timeit

    loops = 5
    seconds = timeit.timeit(lambda: matcher.match_many(probes), number=loops)
    return 1e6 * seconds / (loops * len(probes))


def test_scalability(benchmark, paper_world):
    uploads = build_workload(paper_world)
    n_samples = sum(len(u.samples) for u in uploads)

    import time

    start = time.perf_counter()
    server = benchmark.pedantic(
        ingest_all, args=(paper_world, uploads), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start

    probes = [
        s.tower_ids for upload in uploads[:20] for s in upload.samples
    ][:300]
    per_sample = {size: matcher_cost_us(paper_world, size, probes) for size in DB_SIZES}

    rows = [
        ["uploads ingested", len(uploads)],
        ["samples ingested", n_samples],
        ["throughput (trips/s)", round(len(uploads) / elapsed, 1)],
        ["throughput (samples/s)", round(n_samples / elapsed, 0)],
    ]
    for size in DB_SIZES:
        rows.append([f"matching cost @ {size}-stop DB (us/sample)",
                     round(per_sample[size], 1)])
    report(
        "scalability",
        render_table(
            ["metric", "value"],
            rows,
            title="Backend scalability — ingestion throughput and DB growth",
        ),
    )

    assert server.stats.trips_mapped > 0.7 * len(uploads)
    # A single Python process keeps up with a whole city's upload stream:
    # the paper's 22 participants produced a few hundred trips *per day*.
    assert len(uploads) / elapsed > 20.0
    # Sub-linear matching growth: 3.4x the stops costs well under 3.4x.
    growth = per_sample[DB_SIZES[-1]] / per_sample[DB_SIZES[0]]
    assert growth < 2.5
