"""Ablation (§VI future work) — region-wide inference from covered roads.

The paper leaves "deriving the overall traffic of a region from the bus
covered road segments" as future work, pointing at transportation
models that extrapolate sparse probes.  We implement graph diffusion of
congestion factors and evaluate it leave-out style: hide the speeds of
the uncovered roads, infer them from the bus-covered ones, and compare
against the ground truth and against a flat-prior baseline.
"""

import numpy as np

from conftest import BENCH_SEED, report
from repro.core.region import infer_region_speeds
from repro.eval.reporting import render_table
from repro.util.units import ms_to_kmh, parse_hhmm

EVAL_TIME = parse_hhmm("08:30")
DEFAULT_CONGESTION = 0.85


def run_inference(world):
    network = world.city.network
    covered = world.city.route_network.covered_segments()
    observed = {
        seg: ms_to_kmh(world.traffic.car_speed_ms(seg, EVAL_TIME))
        for seg in covered
    }
    estimates = infer_region_speeds(
        network, observed, default_congestion=DEFAULT_CONGESTION
    )
    hidden = [seg for seg in network.segment_ids if seg not in covered]
    inferred_err, baseline_err = [], []
    for seg in hidden:
        truth = ms_to_kmh(world.traffic.car_speed_ms(seg, EVAL_TIME))
        inferred_err.append(abs(estimates[seg].speed_kmh - truth))
        baseline = DEFAULT_CONGESTION * ms_to_kmh(network.segment(seg).free_speed_ms)
        baseline_err.append(abs(baseline - truth))
    return {
        "hidden": len(hidden),
        "inferred_mae": float(np.mean(inferred_err)),
        "baseline_mae": float(np.mean(baseline_err)),
        "max_hops": max(e.hops_from_observed for e in estimates.values()),
    }


def test_ablation_region_inference(benchmark, paper_world):
    outcome = benchmark.pedantic(
        run_inference, args=(paper_world,), rounds=1, iterations=1
    )

    rows = [
        ["uncovered directed segments", outcome["hidden"]],
        ["graph-diffusion MAE (km/h)", round(outcome["inferred_mae"], 2)],
        ["flat-prior MAE (km/h)", round(outcome["baseline_mae"], 2)],
        ["max hops from a covered road", outcome["max_hops"]],
    ]
    report(
        "ablation_region",
        render_table(
            ["quantity", "value"],
            rows,
            title="§VI extension — inferring uncovered roads at 8:30 AM",
        ),
    )

    assert outcome["hidden"] > 100
    # Diffusion from the 59%-covered roads must beat a flat prior.
    assert outcome["inferred_mae"] < outcome["baseline_mae"]
