"""Ablation (§IV-A/§IV-C) — sparse versus intensive participation.

The paper's first month collected limited data ("the data concentrate
on frequent taken bus routes"); for the evaluation they incentivised
riders to ride intensively.  This bench sweeps the participation rate
and shows how map coverage and accuracy respond — the system's
crowd-density behaviour.
"""

import dataclasses

import numpy as np

from conftest import BENCH_SEED, report
from repro.city import CitySpec, build_city
from repro.config import RiderConfig, SystemConfig
from repro.eval.reporting import render_table
from repro.sim.world import World
from repro.util.units import parse_hhmm

RATES = (0.02, 0.06, 0.12, 0.30)
SPEC = CitySpec(
    name="participation",
    width_m=3500.0,
    height_m=2100.0,
    services=("179", "199", "243", "257"),
    partial_services=(),
    seed=42,
)


def run_campaign(city, rate):
    base = SystemConfig()
    config = dataclasses.replace(
        base,
        riders=dataclasses.replace(base.riders, participation_rate=rate),
    )
    world = World(city=city, config=config, seed=BENCH_SEED)
    result = world.run(
        parse_hhmm("08:00"), parse_hhmm("11:00"), with_official_feed=False
    )
    snap = result.server.traffic_map.published_snapshot(parse_hhmm("10:30"))
    covered = len(city.route_network.covered_segments())
    errors = [
        reading.speed_kmh - result.true_speed_kmh(seg, parse_hhmm("10:15"))
        for seg, reading in snap.readings.items()
    ]
    return {
        "uploads": result.uploads_processed,
        "coverage_of_routes": len(snap.readings) / covered,
        "mae": float(np.mean(np.abs(errors))) if errors else float("nan"),
    }


def test_ablation_participation(benchmark):
    city = build_city(SPEC)
    outcomes = {rate: run_campaign(city, rate) for rate in RATES}
    benchmark.pedantic(
        run_campaign, args=(city, RATES[0]), rounds=1, iterations=1
    )

    rows = [
        [f"{100 * rate:.0f}%", o["uploads"],
         f"{100 * o['coverage_of_routes']:.0f}%", round(o["mae"], 1)]
        for rate, o in outcomes.items()
    ]
    report(
        "ablation_participation",
        render_table(
            ["participation", "uploads", "route-segment coverage", "MAE (km/h)"],
            rows,
            title="§IV-A ablation — sparse vs intensive participation "
                  "(3-hour morning campaign)",
        ),
    )

    coverages = [outcomes[rate]["coverage_of_routes"] for rate in RATES]
    # Coverage grows monotonically with participation and saturates high.
    assert all(b >= a - 0.02 for a, b in zip(coverages, coverages[1:]))
    assert coverages[-1] > 0.8
    assert coverages[-1] > coverages[0] + 0.1
    # Accuracy does not degrade as the crowd grows.
    assert outcomes[RATES[-1]]["mae"] <= outcomes[RATES[0]]["mae"] + 1.0
