"""Parallel ingest throughput: ingest_many at 1/2/4/8 workers.

One morning's uploads are generated once, then replayed into fresh
backends through ``ingest_many`` — serial first, then through the
sharded :class:`IngestEngine` at growing pool sizes.  Every parallel
run's end state (stats, fused traffic map, metrics) is rendered as a
canonical testkit trace and required byte-identical to the serial
run's before its time counts, so the table can't quietly trade
correctness for speed.

A pair of traced passes (span retention on, workers=2, equal shard
size) breaks the wall down into the IPC cost centres the tracer
accounts for — fingerprint broadcast, shard serialize/deserialize with
byte counts, pool queue wait, result wait and merge — once through the
legacy pickle-everything path (*before*) and once through the
shared-memory fingerprint store + columnar shard codec (*after*), so
the broadcast and per-shard byte reductions are printed side by side
instead of asserted in the abstract.  A per-worker
queue-wait/deserialize/compute split for the shm pass lets a flat
speedup curve be read against where the time actually went.  The
before/after numbers also land in
``benchmarks/reports/ipc_breakdown.json`` for the CI artifact.

The speedup column is only meaningful on a multi-core host; the report
records the machine's core count next to it.

Run directly (``PYTHONPATH=src python benchmarks/bench_ingest_parallel.py
[--quick]``) or through pytest; either way the numbers land in
``benchmarks/reports/ingest_parallel.txt``.  ``--quick`` shrinks the
campaign window and the worker matrix for the CI smoke job.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.ingest import IngestEngine
from repro.core.server import BackendServer
from repro.obs import SamplingPolicy, Tracer
from repro.sim.world import World
from repro.testkit import diff_traces, render_trace, trace_from_server
from repro.util.units import parse_hhmm

from conftest import report

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

REPEATS = 3
WORKER_COUNTS = (1, 2, 4, 8)
#: Pool size of the traced IPC-attribution passes.
BREAKDOWN_WORKERS = 2


def _fresh_server(world: World, tracer=None) -> BackendServer:
    return BackendServer(
        world.city.network,
        world.city.route_network,
        world.database,
        world.config,
        tracer=tracer,
    )


def _best_time(world: World, uploads, workers: int, baseline_trace):
    """Best-of-REPEATS wall time; verifies trace parity on every run.

    Parity is judged by the conformance testkit: the server's end state
    is serialized as a canonical golden trace and must render
    byte-identically to the serial baseline's — the same referee
    ``repro conformance`` uses for the end-to-end campaign.
    """
    best = float("inf")
    for _ in range(REPEATS):
        server = _fresh_server(world)
        if workers == 1:
            start = time.perf_counter()
            server.ingest_many(uploads)
            elapsed = time.perf_counter() - start
        else:
            # Pool spin-up + fingerprint broadcast happens once per
            # deployment, not per batch: start it outside the clock.
            with IngestEngine.for_server(server, workers=workers) as engine:
                engine.start()
                start = time.perf_counter()
                server.ingest_many(uploads, engine=engine)
                elapsed = time.perf_counter() - start
        trace = trace_from_server(server)
        if baseline_trace is not None and (
            render_trace(trace) != render_trace(baseline_trace)
        ):
            diff = diff_traces(baseline_trace, trace, max_entries=16)
            raise AssertionError(
                f"workers={workers} diverged from serial:\n  "
                + "\n  ".join(diff or ["render differs"])
            )
        best = min(best, elapsed)
    return best, trace


def _ipc_stats(world: World, uploads, *, shared_store: bool,
               shard_size: int) -> dict:
    """One traced parallel pass; totals/bytes per IPC cost centre."""
    tracer = Tracer(SamplingPolicy())
    server = _fresh_server(world, tracer=tracer)
    with IngestEngine.for_server(
        server, workers=BREAKDOWN_WORKERS,
        shared_store=shared_store, shard_size=shard_size,
    ) as engine:
        server.ingest_many(uploads, engine=engine)
    records = tracer.records()

    def total(name, *, worker=None):
        return sum(
            r.duration_s for r in records
            if r.name == name and r.worker == worker
        )

    def bytes_of(name):
        return sum(
            r.attrs.get("bytes", 0) for r in records if r.name == name
        )

    shards = [r for r in records if r.name == "shard_serialize"]
    per_worker = {}
    for worker in sorted({r.worker for r in records if r.worker}):
        per_worker[worker] = {
            "queue_wait_ms": 1e3 * total("pool_queue_wait", worker=worker),
            "deserialize_ms": 1e3 * total("shard_deserialize", worker=worker),
            "compute_ms": 1e3 * sum(
                r.duration_s for r in records
                if r.worker == worker and r.name == "prepare_trip"
            ),
        }
    return {
        "mode": "shm" if shared_store else "legacy",
        "shard_size": shard_size,
        "shards": len(shards),
        "broadcast_ms": 1e3 * total("fingerprint_broadcast"),
        "broadcast_bytes": bytes_of("fingerprint_broadcast"),
        "shm_bytes": sum(
            r.attrs.get("shm_bytes", 0) for r in records
            if r.name == "fingerprint_broadcast"
        ),
        "serialize_ms": 1e3 * total("shard_serialize"),
        "serialize_bytes": bytes_of("shard_serialize"),
        "per_shard_bytes": (
            bytes_of("shard_serialize") / len(shards) if shards else 0.0
        ),
        "result_wait_ms": 1e3 * total("pool_result_wait"),
        "result_merge_ms": 1e3 * total("result_merge"),
        "per_worker": per_worker,
    }


def _ipc_breakdown(world: World, uploads) -> list:
    """Before/after traced passes: legacy pickling vs shared memory.

    Both passes pin the same shard size (the legacy default of four
    shards per worker) so the per-shard byte comparison is
    apples-to-apples — the shm path's coarser default sharding would
    otherwise inflate its per-shard payloads.
    """
    shard_size = max(
        1, -(-len(uploads) // (BREAKDOWN_WORKERS * 4))
    )
    before = _ipc_stats(world, uploads, shared_store=False,
                        shard_size=shard_size)
    after = _ipc_stats(world, uploads, shared_store=True,
                       shard_size=shard_size)

    def ratio(a, b):
        return a / b if b else float("inf")

    rows = [
        "",
        f"IPC cost attribution (traced passes, workers={BREAKDOWN_WORKERS}, "
        f"shard_size={shard_size}):",
        f"  {'':24} {'legacy (before)':>20} {'shm (after)':>18} "
        f"{'bytes':>8}",
        f"  fingerprint broadcast   "
        f"{before['broadcast_ms']:>7.1f} ms {before['broadcast_bytes'] / 1e3:>8.1f} kB"
        f" {after['broadcast_ms']:>6.1f} ms {after['broadcast_bytes'] / 1e3:>6.1f} kB"
        f" {ratio(before['broadcast_bytes'], after['broadcast_bytes']):>7.1f}x",
        f"  shard serialize (total) "
        f"{before['serialize_ms']:>7.1f} ms {before['serialize_bytes'] / 1e3:>8.1f} kB"
        f" {after['serialize_ms']:>6.1f} ms {after['serialize_bytes'] / 1e3:>6.1f} kB"
        f" {ratio(before['serialize_bytes'], after['serialize_bytes']):>7.1f}x",
        f"  per-shard payload       "
        f"{'':>10} {before['per_shard_bytes'] / 1e3:>8.1f} kB"
        f" {'':>9} {after['per_shard_bytes'] / 1e3:>6.1f} kB"
        f" {ratio(before['per_shard_bytes'], after['per_shard_bytes']):>7.1f}x",
        f"  shared segment          {'':>20} "
        f"{after['shm_bytes'] / 1e3:>13.1f} kB   (mapped once, zero-copy)",
        f"  pool result wait        {before['result_wait_ms']:>7.1f} ms"
        f" {'':>13} {after['result_wait_ms']:>6.1f} ms",
        f"  result merge            {before['result_merge_ms']:>7.1f} ms"
        f" {'':>13} {after['result_merge_ms']:>6.1f} ms",
        "",
        f"  shm pass per worker {'queue-wait':>11} {'deserialize':>12} "
        f"{'compute':>9}",
    ]
    for worker, split in after["per_worker"].items():
        rows.append(
            f"  {worker:>18} "
            f"{split['queue_wait_ms']:>8.1f} ms "
            f"{split['deserialize_ms']:>9.1f} ms "
            f"{split['compute_ms']:>6.1f} ms"
        )

    os.makedirs(REPORT_DIR, exist_ok=True)
    document = {
        "bench": "ipc_breakdown",
        "workers": BREAKDOWN_WORKERS,
        "shard_size": shard_size,
        "uploads": len(uploads),
        "before": before,
        "after": after,
        "reduction": {
            "broadcast_bytes": round(
                ratio(before["broadcast_bytes"], after["broadcast_bytes"]), 2
            ),
            "per_shard_bytes": round(
                ratio(before["per_shard_bytes"], after["per_shard_bytes"]), 2
            ),
        },
    }
    with open(os.path.join(REPORT_DIR, "ipc_breakdown.json"), "w",
              encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return rows


def run(quick: bool = False) -> str:
    world = World(seed=7)
    start, end = ("07:30", "08:15") if quick else ("07:00", "10:00")
    result = world.run(parse_hhmm(start), parse_hhmm(end),
                       with_official_feed=False)
    uploads = result.uploads
    worker_counts = (1, 2) if quick else WORKER_COUNTS
    serial_s, baseline = _best_time(world, uploads, 1, None)
    rows = [
        f"uploads replayed   {len(uploads)}  ({start}-{end})",
        f"host cpu cores     {os.cpu_count()}",
        f"{'workers':>8} {'best (ms)':>10} {'trips/s':>9} {'speedup':>8}",
        f"{1:>8} {serial_s * 1e3:>10.1f} "
        f"{len(uploads) / serial_s:>9.0f} {1.0:>7.2f}x",
    ]
    for workers in worker_counts[1:]:
        elapsed, _ = _best_time(world, uploads, workers, baseline)
        rows.append(
            f"{workers:>8} {elapsed * 1e3:>10.1f} "
            f"{len(uploads) / elapsed:>9.0f} {serial_s / elapsed:>7.2f}x"
        )
    rows.append("trace parity       byte-identical at every worker count")
    rows.extend(_ipc_breakdown(world, uploads))
    return "\n".join(rows)


def test_ingest_parallel():
    report("ingest_parallel", run())


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small campaign + fewer workers (CI smoke)")
    args = parser.parse_args()
    report("ingest_parallel", run(quick=args.quick))
