"""Parallel ingest throughput: ingest_many at 1/2/4/8 workers.

One morning's uploads are generated once, then replayed into fresh
backends through ``ingest_many`` — serial first, then through the
sharded :class:`IngestEngine` at growing pool sizes.  Every parallel
run's end state (stats, fused traffic map, metrics) is rendered as a
canonical testkit trace and required byte-identical to the serial
run's before its time counts, so the table can't quietly trade
correctness for speed.

A final traced pass (span retention on, workers=2) breaks the wall
down into the IPC cost centres the tracer accounts for — fingerprint
broadcast, shard pickle serialize/deserialize with byte counts, pool
queue wait, result wait and merge — plus a per-worker
queue-wait/deserialize/compute split, so a flat speedup curve can be
read against where the time actually went.

The speedup column is only meaningful on a multi-core host; the report
records the machine's core count next to it.

Run directly (``PYTHONPATH=src python benchmarks/bench_ingest_parallel.py``)
or through pytest; either way the numbers land in
``benchmarks/reports/ingest_parallel.txt``.
"""

from __future__ import annotations

import os
import time

from repro.core.ingest import IngestEngine
from repro.core.server import BackendServer
from repro.obs import SamplingPolicy, Tracer
from repro.sim.world import World
from repro.testkit import diff_traces, render_trace, trace_from_server
from repro.util.units import parse_hhmm

from conftest import report

REPEATS = 3
WORKER_COUNTS = (1, 2, 4, 8)
#: Pool size of the traced IPC-attribution pass.
BREAKDOWN_WORKERS = 2


def _fresh_server(world: World, tracer=None) -> BackendServer:
    return BackendServer(
        world.city.network,
        world.city.route_network,
        world.database,
        world.config,
        tracer=tracer,
    )


def _best_time(world: World, uploads, workers: int, baseline_trace):
    """Best-of-REPEATS wall time; verifies trace parity on every run.

    Parity is judged by the conformance testkit: the server's end state
    is serialized as a canonical golden trace and must render
    byte-identically to the serial baseline's — the same referee
    ``repro conformance`` uses for the end-to-end campaign.
    """
    best = float("inf")
    for _ in range(REPEATS):
        server = _fresh_server(world)
        if workers == 1:
            start = time.perf_counter()
            server.ingest_many(uploads)
            elapsed = time.perf_counter() - start
        else:
            # Pool spin-up + fingerprint broadcast happens once per
            # deployment, not per batch: start it outside the clock.
            with IngestEngine.for_server(server, workers=workers) as engine:
                engine.start()
                start = time.perf_counter()
                server.ingest_many(uploads, engine=engine)
                elapsed = time.perf_counter() - start
        trace = trace_from_server(server)
        if baseline_trace is not None and (
            render_trace(trace) != render_trace(baseline_trace)
        ):
            diff = diff_traces(baseline_trace, trace, max_entries=16)
            raise AssertionError(
                f"workers={workers} diverged from serial:\n  "
                + "\n  ".join(diff or ["render differs"])
            )
        best = min(best, elapsed)
    return best, trace


def _ipc_breakdown(world: World, uploads) -> list:
    """One traced parallel pass: where the dispatch wall actually goes."""
    tracer = Tracer(SamplingPolicy())
    server = _fresh_server(world, tracer=tracer)
    with IngestEngine.for_server(server, workers=BREAKDOWN_WORKERS) as engine:
        server.ingest_many(uploads, engine=engine)
    records = tracer.records()

    def total(name, *, worker=None):
        return sum(
            r.duration_s for r in records
            if r.name == name and r.worker == worker
        )

    def bytes_of(name):
        return sum(
            r.attrs.get("bytes", 0) for r in records if r.name == name
        )

    rows = [
        "",
        f"IPC cost attribution (traced pass, workers={BREAKDOWN_WORKERS}):",
        f"  fingerprint broadcast   {total('fingerprint_broadcast') * 1e3:8.1f} ms"
        f"   {bytes_of('fingerprint_broadcast') / 1e6:6.2f} MB",
        f"  shard serialize         {total('shard_serialize') * 1e3:8.1f} ms"
        f"   {bytes_of('shard_serialize') / 1e6:6.2f} MB",
        f"  pool result wait        {total('pool_result_wait') * 1e3:8.1f} ms",
        f"  result merge            {total('result_merge') * 1e3:8.1f} ms",
        "",
        f"  {'worker':>18} {'queue-wait':>11} {'deserialize':>12} "
        f"{'compute':>9}",
    ]
    workers = sorted({r.worker for r in records if r.worker})
    for worker in workers:
        compute = sum(
            r.duration_s for r in records
            if r.worker == worker and r.name == "prepare_trip"
        )
        rows.append(
            f"  {worker:>18} "
            f"{total('pool_queue_wait', worker=worker) * 1e3:>8.1f} ms "
            f"{total('shard_deserialize', worker=worker) * 1e3:>9.1f} ms "
            f"{compute * 1e3:>6.1f} ms"
        )
    return rows


def run() -> str:
    world = World(seed=7)
    result = world.run(parse_hhmm("07:00"), parse_hhmm("10:00"),
                       with_official_feed=False)
    uploads = result.uploads
    serial_s, baseline = _best_time(world, uploads, 1, None)
    rows = [
        f"uploads replayed   {len(uploads)}",
        f"host cpu cores     {os.cpu_count()}",
        f"{'workers':>8} {'best (ms)':>10} {'trips/s':>9} {'speedup':>8}",
        f"{1:>8} {serial_s * 1e3:>10.1f} "
        f"{len(uploads) / serial_s:>9.0f} {1.0:>7.2f}x",
    ]
    for workers in WORKER_COUNTS[1:]:
        elapsed, _ = _best_time(world, uploads, workers, baseline)
        rows.append(
            f"{workers:>8} {elapsed * 1e3:>10.1f} "
            f"{len(uploads) / elapsed:>9.0f} {serial_s / elapsed:>7.2f}x"
        )
    rows.append("trace parity       byte-identical at every worker count")
    rows.extend(_ipc_breakdown(world, uploads))
    return "\n".join(rows)


def test_ingest_parallel():
    report("ingest_parallel", run())


if __name__ == "__main__":
    report("ingest_parallel", run())
