"""Fleet-analytics overhead: receive_trip throughput, stage on vs off.

The fleet-health stage (headways / ghosts / O-D flows) rides the hot
ingest loop: every mapped trip is folded into its trackers right after
leg estimation.  This bench generates one morning's uploads once, then
replays them into fresh backends with the stage enabled and disabled,
both on the null registry so only the analytics bookkeeping itself is
under the clock.  Target: under 5% overhead.

Run directly (``PYTHONPATH=src python benchmarks/bench_analytics.py``,
``--quick`` for the CI smoke) or through pytest; the numbers land in
``benchmarks/reports/BENCH_analytics.{json,txt}``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import List, Optional

from repro.config import AnalyticsConfig, SystemConfig
from repro.core.server import BackendServer
from repro.sim.world import World
from repro.util.units import parse_hhmm

from conftest import REPORT_DIR, report

REPEATS = 5
OVERHEAD_TARGET = 0.05


def _config(enabled: bool) -> SystemConfig:
    return dataclasses.replace(
        SystemConfig(), analytics=AnalyticsConfig(enabled=enabled)
    )


def _fresh_server(world: World, enabled: bool) -> BackendServer:
    return BackendServer(
        world.city.network,
        world.city.route_network,
        world.database,
        _config(enabled),
    )


def _best_time(world: World, uploads, enabled: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        server = _fresh_server(world, enabled)
        start = time.perf_counter()
        server.receive_trips(uploads)
        best = min(best, time.perf_counter() - start)
    return best


def run(quick: bool = False, out: Optional[str] = None) -> dict:
    start, end = ("07:30", "08:15") if quick else ("07:00", "10:00")
    world = World(seed=7)
    result = world.run(parse_hhmm(start), parse_hhmm(end),
                       with_official_feed=False)
    uploads = result.uploads

    off_s = _best_time(world, uploads, enabled=False)
    on_s = _best_time(world, uploads, enabled=True)
    overhead = on_s / off_s - 1.0

    # Sanity: the enabled run actually produced fleet telemetry.
    probe = _fresh_server(world, enabled=True)
    probe.receive_trips(uploads)
    assert probe.analytics is not None
    fleet_events = len(probe.analytics.headways)
    od_trips = probe.analytics.od_flows.total_trips
    assert fleet_events > 0, "analytics-on run saw no bus events"

    document = {
        "campaign": f"{start}-{end}",
        "uploads": len(uploads),
        "repeats": REPEATS,
        "analytics_off_s": off_s,
        "analytics_on_s": on_s,
        "overhead": overhead,
        "overhead_target": OVERHEAD_TARGET,
        "fleet_bus_events": fleet_events,
        "fleet_od_trips": od_trips,
    }
    rows = [
        f"uploads replayed           {len(uploads)}",
        f"analytics off (baseline)   {off_s * 1e3:8.1f} ms   "
        f"{len(uploads) / off_s:8.0f} trips/s",
        f"analytics on               {on_s * 1e3:8.1f} ms   "
        f"{len(uploads) / on_s:8.0f} trips/s",
        f"overhead                   {100 * overhead:+8.1f} %   "
        f"(target < {100 * OVERHEAD_TARGET:.0f}%)",
        f"fleet products             {fleet_events} bus events, "
        f"{od_trips} O-D trips",
    ]
    table = "\n".join(rows)
    report("BENCH_analytics", table)
    out = out or os.path.join(REPORT_DIR, "BENCH_analytics.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    print(f"wrote {out}")
    if overhead > OVERHEAD_TARGET:
        print(f"WARNING: overhead {100 * overhead:.1f}% exceeds the "
              f"{100 * OVERHEAD_TARGET:.0f}% target", file=sys.stderr)
    return document


def test_analytics_overhead():
    run(quick=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small campaign (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default: "
                             "benchmarks/reports/BENCH_analytics.json)")
    args = parser.parse_args(argv)
    run(quick=args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
