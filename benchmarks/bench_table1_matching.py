"""Table I — the worked Smith-Waterman matching instance.

Paper: aligning c_upload = (1, 2, 3, 4, 5) with c_database = (1, 7, 3, 5)
under match +1 / gap −0.3 / mismatch −0.3 yields 3 matches, 1 gap and
1 mismatch for a score of 2.4.
"""

import pytest

from conftest import report
from repro.config import MatchingConfig
from repro.core.matching import smith_waterman
from repro.eval.reporting import render_table

C_UPLOAD = (1, 2, 3, 4, 5)
C_DATABASE = (1, 7, 3, 5)
PAPER_SCORE = 2.4


def test_table1_matching_instance(benchmark):
    score = benchmark(smith_waterman, C_UPLOAD, C_DATABASE, MatchingConfig())

    report(
        "table1_matching",
        render_table(
            ["quantity", "paper", "measured"],
            [
                ["c_upload", str(C_UPLOAD), str(C_UPLOAD)],
                ["c_database", str(C_DATABASE), str(C_DATABASE)],
                ["score", PAPER_SCORE, round(score, 4)],
            ],
            title="Table I — bus stop matching instance",
        ),
    )

    assert score == pytest.approx(PAPER_SCORE)
    # Decomposition: 3 matches (+3.0), 1 gap (−0.3), 1 mismatch (−0.3).
    assert score == pytest.approx(3 * 1.0 - 0.3 - 0.3)
