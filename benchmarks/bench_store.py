"""Durable-store overhead: receive_trip throughput across backends.

The write-ahead contract puts one journal append in front of every
applied trip.  This bench generates one morning's uploads once, then
replays them into fresh backends: no store (the null path — guarded by
one cached boolean, it must stay within 5% of the pre-store baseline,
~825 trips/s on the reference machine), the in-memory store, the
append-only log, and sqlite, each durable backend at ``batch`` and
``always`` fsync.

Run directly (``PYTHONPATH=src python benchmarks/bench_store.py``,
``--quick`` for the CI smoke) or through pytest; the numbers land in
``benchmarks/reports/BENCH_store.{json,txt}``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import List, Optional

from repro.core.server import BackendServer
from repro.sim.world import World
from repro.store import open_store
from repro.util.units import parse_hhmm

from conftest import REPORT_DIR, report

REPEATS = 3
#: The no-store path must not pay for the journaling plumbing.
NULL_OVERHEAD_TARGET = 0.05
#: Throughput of the ingest loop before the durable tier existed
#: (PR 8, reference machine) — context for the absolute rows.
PR8_BASELINE_TRIPS_S = 825.0


def _bench_one(world: World, uploads, make_store) -> float:
    """Best-of-N wall time replaying ``uploads`` into a fresh server."""
    best = float("inf")
    for _ in range(REPEATS):
        store = make_store()
        server = BackendServer(
            world.city.network,
            world.city.route_network,
            world.database,
            world.config,
            store=store,
        )
        start = time.perf_counter()
        server.receive_trips(uploads)
        elapsed = time.perf_counter() - start
        if store is not None:
            store.close()
        best = min(best, elapsed)
    return best


def run(quick: bool = False, out: Optional[str] = None) -> dict:
    start, end = ("07:30", "08:15") if quick else ("07:00", "10:00")
    world = World(seed=7)
    result = world.run(parse_hhmm(start), parse_hhmm(end),
                       with_official_feed=False)
    uploads = result.uploads

    scratch = tempfile.mkdtemp(prefix="bench-store-")
    counter = [0]

    def durable(backend: str, fsync: str):
        def make():
            counter[0] += 1
            suffix = ".db" if backend == "sqlite" else ""
            path = os.path.join(scratch, f"{backend}-{counter[0]}{suffix}")
            return open_store(path, backend=backend, fsync=fsync)
        return make

    cases = [
        ("no store (null path)", lambda: None),
        ("memory", lambda: open_store(":memory:")),
        ("appendlog fsync=batch", durable("appendlog", "batch")),
        ("appendlog fsync=always", durable("appendlog", "always")),
        ("sqlite fsync=batch", durable("sqlite", "batch")),
        ("sqlite fsync=always", durable("sqlite", "always")),
    ]
    try:
        timings = {label: _bench_one(world, uploads, make)
                   for label, make in cases}
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    null_s = timings["no store (null path)"]
    null_rate = len(uploads) / null_s
    document = {
        "campaign": f"{start}-{end}",
        "uploads": len(uploads),
        "repeats": REPEATS,
        "null_trips_per_s": null_rate,
        "pr8_baseline_trips_per_s": PR8_BASELINE_TRIPS_S,
        "null_overhead_target": NULL_OVERHEAD_TARGET,
        "backends": {
            label: {
                "seconds": seconds,
                "trips_per_s": len(uploads) / seconds,
                "overhead_vs_null": seconds / null_s - 1.0,
            }
            for label, seconds in timings.items()
        },
    }
    rows = [f"uploads replayed           {len(uploads)}"]
    for label, seconds in timings.items():
        rate = len(uploads) / seconds
        overhead = seconds / null_s - 1.0
        rows.append(f"{label:<26} {seconds * 1e3:8.1f} ms   "
                    f"{rate:8.0f} trips/s   {100 * overhead:+6.1f} %")
    rows.append(f"pr8 reference baseline     {PR8_BASELINE_TRIPS_S:8.0f} "
                f"trips/s (null path target: within "
                f"{100 * NULL_OVERHEAD_TARGET:.0f}%)")
    table = "\n".join(rows)
    report("BENCH_store", table)
    out = out or os.path.join(REPORT_DIR, "BENCH_store.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    print(f"wrote {out}")
    return document


def test_store_overhead():
    document = run(quick=True)
    backends = document["backends"]
    # The journaled paths actually journaled (sanity, not a perf gate).
    assert backends["memory"]["seconds"] > 0
    # Null path must at least be no slower than the journaled memory
    # path — the cached-boolean guard keeps it store-free entirely.
    assert (backends["no store (null path)"]["seconds"]
            <= backends["memory"]["seconds"] * (1 + NULL_OVERHEAD_TARGET))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short campaign for the CI smoke")
    parser.add_argument("--out", default=None, help="JSON output path")
    args = parser.parse_args(argv)
    document = run(quick=args.quick, out=args.out)
    null_rate = document["null_trips_per_s"]
    floor = PR8_BASELINE_TRIPS_S * (1 - NULL_OVERHEAD_TARGET)
    if not args.quick and null_rate < floor:
        print(f"WARNING: null-store path at {null_rate:.0f} trips/s is "
              f"below the PR-8 reference floor ({floor:.0f} trips/s); "
              f"machine-dependent, but check the journaling guard",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
