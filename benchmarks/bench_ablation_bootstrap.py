"""Ablation (§VI) — bootstrapping the fingerprint DB via bus drivers.

The paper proposes seeding a new deployment by having bus drivers
install the app: their phones ride known routes, so heard beep bursts
can be labelled with stops and the fingerprint database builds itself
online — no war-driving.  This bench measures how quickly the
driver-built database converges to the quality of the offline survey.
"""

import numpy as np

from conftest import BENCH_SEED, report
from repro.core import SampleMatcher
from repro.core.bootstrap import DatabaseBootstrapper
from repro.eval.reporting import render_table
from repro.phone.cellular import CellularSample
from repro.phone.trip_recorder import TripUpload

ROUNDS = 3           # driver passes over every route


def driver_upload(world, route, rng, round_index):
    samples = []
    t = 1000.0 * round_index
    for route_stop in route.stops:
        platform = world.city.registry.platform(route_stop.stop_id)
        for k in range(2):
            obs = world.scanner.scan(platform.position, rng)
            samples.append(CellularSample(time_s=t + 2.0 * k, tower_ids=obs.tower_ids))
        t += 90.0
    return TripUpload(
        trip_key=f"driver-{route.route_id}-{round_index}", samples=tuple(samples)
    )


def matching_accuracy(world, database, rng, probes_per_stop=3):
    if len(database) == 0:
        return 0.0
    matcher = SampleMatcher(database.as_dict(), world.config.matching)
    total = correct = 0
    for station in world.city.registry.stations:
        for rep in range(probes_per_stop):
            obs = world.scanner.scan(station.stops[rep % 2].position, rng)
            result = matcher.match(obs.tower_ids)
            total += 1
            correct += result.station_id == station.station_id
    return correct / total


def run_bootstrap(world):
    rng = np.random.default_rng(BENCH_SEED + 11)
    boot = DatabaseBootstrapper(
        matching=world.config.matching,
        clustering=world.config.clustering,
        min_samples_to_promote=3,
    )
    all_stations = [s.station_id for s in world.city.registry.stations]
    progress = []
    for round_index in range(ROUNDS):
        for route_id in world.city.route_network.route_ids:
            route = world.city.route_network.route(route_id)
            boot.ingest_driver_trip(
                driver_upload(world, route, rng, round_index), route
            )
        progress.append(
            (
                round_index + 1,
                boot.stats.driver_trips,
                boot.coverage_fraction(all_stations),
                matching_accuracy(world, boot.database,
                                  np.random.default_rng(BENCH_SEED + 12)),
            )
        )
    return boot, progress


def test_ablation_bootstrap(benchmark, paper_world):
    boot, progress = benchmark.pedantic(
        run_bootstrap, args=(paper_world,), rounds=1, iterations=1
    )
    survey_accuracy = matching_accuracy(
        paper_world, paper_world.database, np.random.default_rng(BENCH_SEED + 12)
    )

    rows = [
        [rnd, trips, f"{100 * coverage:.0f}%", f"{100 * accuracy:.1f}%"]
        for rnd, trips, coverage, accuracy in progress
    ]
    rows.append(["(offline survey)", "-", "100%", f"{100 * survey_accuracy:.1f}%"])
    report(
        "ablation_bootstrap",
        render_table(
            ["driver rounds", "driver trips", "DB coverage", "matching accuracy"],
            rows,
            title="§VI ablation — driver-bootstrapped fingerprint database",
        ),
    )

    final_coverage = progress[-1][2]
    final_accuracy = progress[-1][3]
    assert final_coverage == 1.0
    # Within a few points of the war-driven database.
    assert final_accuracy > survey_accuracy - 0.05
    # Coverage is monotone in driver effort.
    coverages = [p[2] for p in progress]
    assert all(b >= a for a, b in zip(coverages, coverages[1:]))
