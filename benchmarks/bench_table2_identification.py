"""Table II — bus stop identification accuracy per route.

The paper rode each of the 8 routes 8 times; one run's scans built the
fingerprint database and the other 7 were identified against it.  The
per-route error rate stays below 8%, with almost all errors only 1 stop
away from the truth.

This bench mirrors the protocol: 8 survey rides per route (ride 0 →
database), the remaining 7 rides produce per-stop samples that flow
through the full pipeline (match → cluster → map), and the resolved
stop is compared with the true one.
"""

import numpy as np

from conftest import BENCH_SEED, report
from repro.config import SystemConfig
from repro.core.clustering import MatchedSample, cluster_trip_samples
from repro.core.fingerprint import FingerprintDatabase
from repro.core.matching import SampleMatcher
from repro.core.trip_mapping import RouteConstraint, map_trip
from repro.eval.reporting import render_table

N_RUNS = 8
SAMPLES_PER_STOP = 2          # boarding passengers per stop per ride
INTER_STOP_S = 90.0
PAPER_MAX_ERROR_RATE = 0.08

SERVICES = ("179", "199", "240", "243", "252", "257", "282", "103")


def ride_scans(world, route, rng):
    """One survey ride: scans taken at each stop's platform."""
    scans = []
    for route_stop in route.stops:
        platform = world.city.registry.platform(route_stop.stop_id)
        per_stop = [
            world.scanner.scan(platform.position, rng).tower_ids
            for _ in range(SAMPLES_PER_STOP)
        ]
        scans.append((route_stop.station_id, per_stop))
    return scans


def identify_route(world, service, rng):
    """The Table II protocol for one service (direction 0)."""
    route = world.city.route_network.route(f"{service}-0")
    config = world.config

    runs = [ride_scans(world, route, rng) for _ in range(N_RUNS)]
    database = FingerprintDatabase(config.matching)
    for station_id, samples in runs[0]:
        database.set_from_samples(station_id, samples)
    matcher = SampleMatcher(database.as_dict(), config.matching)
    constraint = RouteConstraint(world.city.route_network, config.trip_mapping)
    order_of = {rs.station_id: rs.order for rs in route.stops}

    total = errors = off_by_1 = off_by_2 = 0
    for run in runs[1:]:
        # Build the run's trip: timestamped samples at successive stops.
        matched, truth = [], []
        t = 0.0
        for station_id, samples in run:
            for k, towers in enumerate(samples):
                result = matcher.match(towers)
                if result.accepted:
                    from repro.phone.cellular import CellularSample

                    matched.append(
                        MatchedSample(
                            sample=CellularSample(time_s=t + 2.0 * k, tower_ids=towers),
                            match=result,
                        )
                    )
                    truth.append(station_id)
            t += INTER_STOP_S
        clusters = cluster_trip_samples(matched, config.clustering)
        mapped = map_trip(clusters, constraint)
        if mapped is None:
            continue
        truth_by_time = {m.time_s: s for m, s in zip(matched, truth)}
        for stop, cluster in _pair_stops_to_clusters(mapped, clusters):
            true_station = _majority_truth(cluster, truth_by_time)
            if true_station is None:
                continue
            total += 1
            if stop.station_id != true_station:
                errors += 1
                gap = abs(
                    order_of.get(stop.station_id, -99)
                    - order_of.get(true_station, -50)
                )
                if gap == 1:
                    off_by_1 += 1
                else:
                    off_by_2 += 1
    return {
        "stops": len(route.stops),
        "total": total,
        "errors": errors,
        "rate": errors / total if total else 0.0,
        "off_by_1": off_by_1,
        "off_by_2plus": off_by_2,
    }


def _pair_stops_to_clusters(mapped, clusters):
    by_time = {(c.arrival_s, c.depart_s): c for c in clusters}
    for stop in mapped.stops:
        cluster = by_time.get((stop.arrival_s, stop.depart_s))
        if cluster is not None:
            yield stop, cluster


def _majority_truth(cluster, truth_by_time):
    stations = [
        truth_by_time[m.time_s] for m in cluster.samples if m.time_s in truth_by_time
    ]
    if not stations:
        return None
    return max(set(stations), key=stations.count)


def run_all(world):
    rng = np.random.default_rng(BENCH_SEED + 2)
    return {service: identify_route(world, service, rng) for service in SERVICES}


def test_table2_identification(benchmark, paper_world):
    results = benchmark.pedantic(run_all, args=(paper_world,), rounds=1, iterations=1)

    rows = []
    for service, r in results.items():
        rows.append(
            [service, r["stops"], r["total"], r["errors"],
             f"{100 * r['rate']:.1f}%", r["off_by_1"], r["off_by_2plus"]]
        )
    report(
        "table2_identification",
        render_table(
            ["route", "stops", "identifications", "errors", "error rate",
             "1 stop off", "2+ stops off"],
            rows,
            title="Table II — bus stop identification accuracy "
                  "(paper: <8% per route, errors mostly ±1 stop)",
        ),
    )

    for service, r in results.items():
        assert r["total"] > 50, service
        assert r["rate"] < PAPER_MAX_ERROR_RATE, (service, r)
    # Across all routes, errors are dominated by ±1-stop slips (paper:
    # 6 of 7 mis-identifications on route 240 were 1 stop away).
    total_errors = sum(r["errors"] for r in results.values())
    total_off1 = sum(r["off_by_1"] for r in results.values())
    if total_errors >= 5:
        assert total_off1 >= 0.5 * total_errors
