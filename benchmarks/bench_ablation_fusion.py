"""Ablation (Eq. 4) — Bayesian fusion vs simpler estimators.

The paper fuses per-trip speed observations with a precision-weighted
(Eq. 4) sequential update.  This bench feeds the same noisy observation
stream — tracking a drifting true speed — to three estimators and
compares tracking error:

* Eq. 4 fusion with staleness inflation (ours),
* last-observation-wins,
* running mean of all observations.
"""

import numpy as np

from conftest import BENCH_SEED, report
from repro.config import FusionConfig
from repro.core.fusion import BayesianSpeedFuser
from repro.eval.reporting import render_table

DURATION_S = 6 * 3600.0
OBS_PERIOD_S = 240.0
OBS_SIGMA = 4.0


def true_speed(t):
    """A morning-rush-like drift: slow dip then recovery."""
    return 45.0 - 18.0 * np.exp(-0.5 * ((t - 2.5 * 3600) / 3600.0) ** 2)


def run_stream(seed):
    rng = np.random.default_rng(seed)
    fuser = BayesianSpeedFuser(FusionConfig(observation_sigma_kmh=OBS_SIGMA))
    last_value = None
    total, count = 0.0, 0
    errors = {"fusion": [], "last": [], "mean": []}
    t = 0.0
    while t < DURATION_S:
        # Observations arrive irregularly, like real bus trips.
        if rng.random() < 0.7:
            obs = true_speed(t) + rng.normal(0.0, OBS_SIGMA)
            obs = max(obs, 1.0)
            fuser.update("seg", obs, t=t)
            last_value = obs
            total += obs
            count += 1
        # Score the current estimates against the instantaneous truth.
        if count:
            truth = true_speed(t)
            errors["fusion"].append(abs(fuser.current("seg", t).mean_kmh - truth))
            errors["last"].append(abs(last_value - truth))
            errors["mean"].append(abs(total / count - truth))
        t += OBS_PERIOD_S
    return {name: float(np.mean(values)) for name, values in errors.items()}


def test_ablation_fusion(benchmark):
    results = [run_stream(BENCH_SEED + k) for k in range(20)]
    benchmark(run_stream, BENCH_SEED)
    mean_err = {
        name: float(np.mean([r[name] for r in results]))
        for name in ("fusion", "last", "mean")
    }

    rows = [
        ["Eq. 4 Bayesian fusion (+staleness)", round(mean_err["fusion"], 2)],
        ["last observation wins", round(mean_err["last"], 2)],
        ["running mean of all observations", round(mean_err["mean"], 2)],
    ]
    report(
        "ablation_fusion",
        render_table(
            ["estimator", "mean |error| (km/h)"],
            rows,
            title="Eq. 4 ablation — tracking a drifting segment speed",
        ),
    )

    # Fusion beats both naive estimators: it smooths noise (unlike
    # last-value) while still tracking drift (unlike the global mean).
    assert mean_err["fusion"] < mean_err["last"]
    assert mean_err["fusion"] < mean_err["mean"]
