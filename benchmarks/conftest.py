"""Shared benchmark fixtures: the paper-scale world and a full service day.

The heavy campaign (all 16 directed routes, 07:00–20:00) is simulated
once per benchmark session and shared by the Fig. 9/10/11 benches.
Every bench renders its paper-vs-measured rows with :func:`report`,
which both prints them and archives them under ``benchmarks/reports/``.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.city import build_city
from repro.obs import MetricsRegistry, Tracer
from repro.sim.world import World
from repro.util.units import parse_hhmm

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

#: Worlds whose observability state gets dumped at session end, so
#: BENCH_*.json entries can carry per-stage breakdowns.
_TRACED_WORLDS = []

#: Seed for everything in the benchmark session.
BENCH_SEED = 7

DAY_START = parse_hhmm("07:00")
DAY_END = parse_hhmm("20:00")


def report(name: str, text: str) -> None:
    """Print a bench's table and archive it under benchmarks/reports/."""
    print()
    print(f"===== {name} =====")
    print(text)
    os.makedirs(REPORT_DIR, exist_ok=True)
    with open(os.path.join(REPORT_DIR, f"{name}.txt"), "w", encoding="utf-8") as out:
        out.write(text + "\n")


@pytest.fixture(scope="session")
def paper_city():
    return build_city()


@pytest.fixture(scope="session")
def paper_world(paper_city):
    world = World(
        city=paper_city, seed=BENCH_SEED,
        registry=MetricsRegistry(), tracer=Tracer(),
    )
    _TRACED_WORLDS.append(world)
    return world


def pytest_sessionfinish(session, exitstatus):
    """Dump per-stage pipeline timings from every traced bench world."""
    if not _TRACED_WORLDS:
        return
    document = {
        "worlds": [
            {
                "seed": world.seed,
                "stages": world.tracer.stage_stats(),
                "stats": world.server.stats.as_dict(),
                "metrics": world.registry.as_dict(),
            }
            for world in _TRACED_WORLDS
        ]
    }
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, "stage_timings.json")
    with open(path, "w", encoding="utf-8") as out:
        json.dump(document, out, indent=2)


@pytest.fixture(scope="session")
def day_result(paper_world):
    """One full service day over every route (the Fig. 9/10/11 campaign)."""
    return paper_world.run(DAY_START, DAY_END)


@pytest.fixture()
def bench_rng():
    return np.random.default_rng(BENCH_SEED)
