"""Fig. 1 — CDF of GPS localisation errors in downtown Singapore.

Paper: median error ≈40 m stationary, ≈68 m moving on buses; 90th
percentiles ≈75 m and ≈130 m.  This bench regenerates both CDFs from
the urban-canyon GPS model and checks the statistics (the paper's
motivation for avoiding GPS).
"""

import numpy as np

from conftest import report
from repro.eval.metrics import Cdf
from repro.eval.reporting import render_table
from repro.radio import GpsCondition, GpsErrorModel

N_FIXES = 2000

PAPER = {
    GpsCondition.STATIONARY: (40.0, 75.0),
    GpsCondition.ON_BUS: (68.0, 130.0),
}


def run_experiment(rng):
    model = GpsErrorModel()
    cdfs = {
        condition: Cdf.of(model.sample_errors(condition, N_FIXES, rng))
        for condition in GpsCondition
    }
    return cdfs


def test_fig01_gps_error(benchmark, bench_rng):
    cdfs = benchmark(run_experiment, bench_rng)

    rows = []
    for condition, cdf in cdfs.items():
        paper_median, paper_p90 = PAPER[condition]
        rows.append(
            [condition.value, paper_median, round(cdf.median, 1),
             paper_p90, round(cdf.percentile(90), 1)]
        )
    from repro.eval.figures import ascii_cdf

    report(
        "fig01_gps_error",
        render_table(
            ["condition", "paper median (m)", "measured median",
             "paper p90 (m)", "measured p90"],
            rows,
            title="Fig. 1 — GPS localisation error CDFs",
        )
        + "\n\n"
        + ascii_cdf(
            {condition.value: cdf for condition, cdf in cdfs.items()},
            value_label="GPS error (m)",
        ),
    )

    for condition, cdf in cdfs.items():
        paper_median, paper_p90 = PAPER[condition]
        np.testing.assert_allclose(cdf.median, paper_median, rtol=0.1)
        np.testing.assert_allclose(cdf.percentile(90), paper_p90, rtol=0.1)
    # The on-bus curve must sit right of the stationary one (GPS is worse
    # inside the bus), which is the figure's visual message.
    assert cdfs[GpsCondition.ON_BUS].median > cdfs[GpsCondition.STATIONARY].median
