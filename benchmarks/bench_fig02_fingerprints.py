"""Fig. 2(b)/(c) — similarity of bus-stop cellular fingerprints.

Paper, same stop (self-similarity): ~90% of scores > 3 and >50% > 4.
Paper, different stops: ~70% score exactly 0, >90% below 2; after
merging the two sides of the road ("effective"), ≥94% below 2.

This bench surveys the fingerprint database, re-scans every stop under
fresh temporal noise, and reproduces both CDFs.  The measured shape is
what justifies the acceptance threshold γ = 2.
"""

import itertools

import numpy as np

from conftest import BENCH_SEED, report
from repro.core.matching import batch_smith_waterman
from repro.eval.metrics import Cdf
from repro.eval.reporting import render_table

REVISITS_PER_STOP = 4


def self_similarity_scores(world, rng):
    pairs_up, pairs_db = [], []
    for station in world.city.registry.stations:
        fingerprint = world.database.fingerprint(station.station_id)
        for rep in range(REVISITS_PER_STOP):
            platform = station.stops[rep % len(station.stops)]
            obs = world.scanner.scan(platform.position, rng)
            pairs_up.append(obs.tower_ids)
            pairs_db.append(fingerprint)
    return batch_smith_waterman(pairs_up, pairs_db, world.config.matching)


def cross_similarity_scores(world):
    """All distinct station pairs (already side-merged = 'effective')."""
    ids = world.database.station_ids
    pairs_up, pairs_db = [], []
    for i, j in itertools.combinations(range(len(ids)), 2):
        pairs_up.append(world.database.fingerprint(ids[i]))
        pairs_db.append(world.database.fingerprint(ids[j]))
    return batch_smith_waterman(pairs_up, pairs_db, world.config.matching)


def platform_cross_scores(world, rng):
    """'Overall' curve: treat each physical platform separately.

    Includes opposite-side platform pairs, whose near-identical
    fingerprints create the paper's high-similarity tail in Fig. 2(c).
    """
    scans = []
    for station in world.city.registry.stations:
        for platform in station.stops:
            scans.append(
                (station.station_id, world.scanner.scan(platform.position, rng).tower_ids)
            )
    pairs_up, pairs_db, same_station = [], [], []
    for (sa, fa), (sb, fb) in itertools.combinations(scans, 2):
        if not fa or not fb:
            continue
        pairs_up.append(fa)
        pairs_db.append(fb)
        same_station.append(sa == sb)
    scores = batch_smith_waterman(pairs_up, pairs_db, world.config.matching)
    # "Different stops" per the paper's overall curve = different platforms,
    # where the two sides of one road count as different stops.
    return np.array([s for s, same in zip(scores, same_station) if not same])


def test_fig02_fingerprint_similarity(benchmark, paper_world):
    rng = np.random.default_rng(BENCH_SEED + 1)
    self_scores = benchmark(self_similarity_scores, paper_world, rng)
    effective = cross_similarity_scores(paper_world)
    overall = platform_cross_scores(paper_world, np.random.default_rng(BENCH_SEED + 2))

    self_cdf = Cdf.of(self_scores)
    rows = [
        ["self: fraction > 3", "~0.90", round(1 - self_cdf.fraction_below(3.0), 3)],
        ["self: fraction > 4", ">0.50", round(1 - self_cdf.fraction_below(4.0), 3)],
        ["cross overall: fraction = 0", "~0.70", round(float(np.mean(overall == 0)), 3)],
        ["cross overall: fraction < 2", ">0.90", round(float(np.mean(overall < 2)), 3)],
        ["cross effective: fraction < 2", ">=0.94", round(float(np.mean(effective < 2)), 3)],
    ]
    report(
        "fig02_fingerprints",
        render_table(
            ["statistic", "paper", "measured"],
            rows,
            title="Fig. 2(b)/(c) — fingerprint similarity CDFs",
        ),
    )

    # Shape assertions: stops are self-consistent and mutually distinct.
    assert 1 - self_cdf.fraction_below(3.0) > 0.6
    assert 1 - self_cdf.fraction_below(4.0) > 0.35
    assert float(np.mean(overall < 2)) > 0.9
    assert float(np.mean(effective < 2)) >= 0.94
    # Self-similarity must dominate cross-similarity by a wide margin —
    # this separation is what makes γ = 2 workable.
    assert self_cdf.median > np.percentile(effective, 99)
