"""Observability overhead: receive_trip throughput, null vs instrumented.

The labeled-metric fast path must keep the backend's hot ingest loop
within ~2% of the uninstrumented (NULL_REGISTRY) baseline, and the
span tracer must stay within the 5% budget when disabled (the default:
everything routes through NULL_TRACER).  This bench generates one
morning's uploads once, then replays them into fresh backends:

* ``null``      — default observability off (NULL_REGISTRY/NULL_TRACER),
* ``recording`` — a real MetricsRegistry + aggregate-only Tracer,
* ``retaining`` — MetricsRegistry + a span-retaining Tracer (the
  ``--trace-out`` configuration: head sampling at 1.0, exemplars on).

The null row is also compared against the PR-6 throughput recorded
before span retention landed, so a regression on the *disabled* path —
the acceptance criterion — shows up as a delta, not a vibe.

Run directly (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``)
or through pytest; either way the numbers land in
``benchmarks/reports/obs_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.core.server import BackendServer
from repro.obs import MetricsRegistry, SamplingPolicy, Tracer
from repro.sim.world import World
from repro.util.units import parse_hhmm

from conftest import report

REPEATS = 5

#: Null-path throughput recorded by this bench at the PR-6 commit,
#: before the span-tracing subsystem existed (trips/s on the 1-core
#: reference host).  The tracing-disabled path must stay within 5%.
PR6_NULL_TRIPS_S = 825.0


def _fresh_server(world: World, registry=None, tracer=None) -> BackendServer:
    return BackendServer(
        world.city.network,
        world.city.route_network,
        world.database,
        world.config,
        registry=registry,
        tracer=tracer,
    )


def _best_times(world: World, uploads, variants) -> list:
    """Best-of-REPEATS per variant, interleaved round-robin.

    Interleaving matters on a shared host: a slow phase (page cache,
    noisy neighbour) then taxes every variant equally instead of
    landing on whichever one happened to run during it.
    """
    best = [float("inf")] * len(variants)
    for _ in range(REPEATS):
        for i, make in enumerate(variants):
            server = _fresh_server(world, **make())
            start = time.perf_counter()
            server.receive_trips(uploads)
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def run() -> str:
    world = World(seed=7)
    result = world.run(parse_hhmm("07:00"), parse_hhmm("10:00"),
                       with_official_feed=False)
    uploads = result.uploads
    null_s, recording_s, retaining_s = _best_times(world, uploads, [
        lambda: {},
        lambda: {"registry": MetricsRegistry(), "tracer": Tracer()},
        lambda: {"registry": MetricsRegistry(),
                 "tracer": Tracer(SamplingPolicy())},
    ])
    null_rate = len(uploads) / null_s
    null_delta = 100 * (null_rate / PR6_NULL_TRIPS_S - 1)
    rows = [
        f"uploads replayed              {len(uploads)}",
        f"null registry (baseline)      {null_s * 1e3:8.1f} ms   "
        f"{null_rate:8.0f} trips/s",
        f"recording registry + tracer   {recording_s * 1e3:8.1f} ms   "
        f"{len(uploads) / recording_s:8.0f} trips/s",
        f"  + span retention on        {retaining_s * 1e3:8.1f} ms   "
        f"{len(uploads) / retaining_s:8.0f} trips/s",
        f"recording overhead            {100 * (recording_s / null_s - 1):+8.1f} %",
        f"span-retention overhead       {100 * (retaining_s / null_s - 1):+8.1f} %",
        "",
        f"tracing-disabled path vs PR-6 baseline "
        f"({PR6_NULL_TRIPS_S:.0f} trips/s): "
        f"{null_rate:.0f} trips/s ({null_delta:+.1f} %, 5 % budget)",
    ]
    return "\n".join(rows)


def test_obs_overhead():
    report("obs_overhead", run())


if __name__ == "__main__":
    report("obs_overhead", run())
