"""Observability overhead: receive_trip throughput, null vs recording.

The labeled-metric fast path must keep the backend's hot ingest loop
within ~2% of the uninstrumented (NULL_REGISTRY) baseline.  This bench
generates one morning's uploads once, then replays them into fresh
backends:

* ``null``      — default observability off (NULL_REGISTRY/NULL_TRACER),
* ``recording`` — a real MetricsRegistry + Tracer attached.

Run directly (``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``)
or through pytest; either way the numbers land in
``benchmarks/reports/obs_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.core.server import BackendServer
from repro.obs import MetricsRegistry, Tracer
from repro.sim.world import World
from repro.util.units import parse_hhmm

from conftest import report

REPEATS = 5


def _fresh_server(world: World, registry=None, tracer=None) -> BackendServer:
    return BackendServer(
        world.city.network,
        world.city.route_network,
        world.database,
        world.config,
        registry=registry,
        tracer=tracer,
    )


def _best_time(world: World, uploads, registry=None, tracer=None) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        server = _fresh_server(world, registry=registry, tracer=tracer)
        start = time.perf_counter()
        server.receive_trips(uploads)
        best = min(best, time.perf_counter() - start)
    return best


def run() -> str:
    world = World(seed=7)
    result = world.run(parse_hhmm("07:00"), parse_hhmm("10:00"),
                       with_official_feed=False)
    uploads = result.uploads
    null_s = _best_time(world, uploads)
    recording_s = _best_time(
        world, uploads, registry=MetricsRegistry(), tracer=Tracer()
    )
    rows = [
        f"uploads replayed              {len(uploads)}",
        f"null registry (baseline)      {null_s * 1e3:8.1f} ms   "
        f"{len(uploads) / null_s:8.0f} trips/s",
        f"recording registry + tracer   {recording_s * 1e3:8.1f} ms   "
        f"{len(uploads) / recording_s:8.0f} trips/s",
        f"recording overhead            {100 * (recording_s / null_s - 1):+8.1f} %",
    ]
    return "\n".join(rows)


def test_obs_overhead():
    report("obs_overhead", run())


if __name__ == "__main__":
    report("obs_overhead", run())
