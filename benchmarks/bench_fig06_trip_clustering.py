"""Fig. 6 — clustering one trip's samples into per-stop bursts.

The figure shows a sample sequence collected on one trip being
clustered into bus stops, with the first/last sample of each cluster
taken as the stop's arrival/departing point, later used for travel-time
estimation.  This bench reproduces that extraction on a real simulated
trip and measures how well the extracted points bracket the true dwell
windows.
"""

import itertools

import numpy as np

from conftest import BENCH_SEED, report
from repro.core.clustering import MatchedSample, cluster_trip_samples
from repro.eval.reporting import render_table
from repro.phone.app import PhoneAgent
from repro.sim.bus import simulate_bus_trip
from repro.util.units import hhmm, parse_hhmm


def build_trip(world):
    rng = np.random.default_rng(BENCH_SEED + 6)
    route = world.city.route_network.route("179-0")
    trace = simulate_bus_trip(
        route,
        parse_hhmm("08:20"),
        world.traffic,
        itertools.count(),
        rng=rng,
        bus_config=world.config.bus,
        rider_config=world.config.riders,
    )
    ride = max(trace.participants, key=lambda p: p.alight_order - p.board_order)
    agent = PhoneAgent(
        phone_id="fig06",
        sampler=world.sampler,
        registry=world.city.registry,
        config=world.config,
        rng=rng,
    )
    upload = agent.ride_and_record(trace, ride)[0]
    return trace, ride, upload


def cluster_upload(world, upload):
    results = world.server.matcher.match_many([s.tower_ids for s in upload.samples])
    matched = [
        MatchedSample(sample=s, match=r)
        for s, r in zip(upload.samples, results)
        if r.accepted
    ]
    return cluster_trip_samples(matched, world.config.clustering)


def test_fig06_trip_clustering(benchmark, paper_world):
    trace, ride, upload = build_trip(paper_world)
    clusters = benchmark(cluster_upload, paper_world, upload)

    onboard = [
        v
        for v in trace.visits
        if ride.board_order <= v.stop_order <= ride.alight_order
        and v.served
        and any(t.stop_order == v.stop_order for t in trace.taps)
    ]

    rows = []
    bracketing_errors = []
    for cluster, visit in zip(clusters, onboard):
        arrival_err = cluster.arrival_s - visit.arrival_s
        depart_err = visit.depart_s - cluster.depart_s
        bracketing_errors.extend([arrival_err, depart_err])
        rows.append(
            [
                visit.station_id,
                hhmm(visit.arrival_s),
                round(cluster.arrival_s - visit.arrival_s, 1),
                round(cluster.depart_s - visit.depart_s, 1),
                len(cluster),
            ]
        )
    report(
        "fig06_trip_clustering",
        render_table(
            ["true station", "true arrival", "arrival point offset (s)",
             "departing point offset (s)", "samples"],
            rows,
            title="Fig. 6 — per-stop clusters and arrival/departing extraction",
        ),
    )

    # One cluster per heard stop, in order.
    assert len(clusters) == len(onboard)
    # Arrival/departing points sit inside (or within seconds of) the true
    # dwell window: taps happen between door-open and door-close.
    assert all(err > -1.0 for err in bracketing_errors)
    assert np.mean(np.abs(bracketing_errors)) < 15.0
