"""Fig. 7 — resolving candidate pools with the route-order constraint.

The figure shows a sequence of clusters, each with a pool of candidate
stops, being narrowed to a single consistent stop sequence by the bus
route constraints.  This bench counts how often per-sample matching
alone mis-identifies a cluster and how many of those errors the
per-trip mapping (Eq. 2 / Viterbi) repairs.
"""

import itertools

import numpy as np

from conftest import BENCH_SEED, report
from repro.core.clustering import MatchedSample, cluster_trip_samples
from repro.core.trip_mapping import map_trip
from repro.eval.reporting import render_table
from repro.phone.app import record_participant_trips
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm

N_TRIPS = 8


def run_study(world):
    rng = np.random.default_rng(BENCH_SEED + 7)
    rider_ids = itertools.count()
    stats = {
        "clusters": 0,
        "multi_candidate": 0,
        "greedy_errors": 0,
        "mapped_errors": 0,
        "repaired": 0,
    }
    for k in range(N_TRIPS):
        route = world.city.route_network.route(("179-0", "252-0")[k % 2])
        trace = simulate_bus_trip(
            route,
            parse_hhmm("08:00") + 900.0 * k,
            world.traffic,
            rider_ids,
            rng=rng,
            bus_config=world.config.bus,
            rider_config=world.config.riders,
        )
        visit_of = {
            v.stop_order: v for v in trace.visits if v.served
        }
        tap_stop = {t.time_s: t.stop_order for t in trace.taps}
        uploads = record_participant_trips(
            trace, world.city.registry, world.sampler, world.config, rng=rng
        )
        for upload in uploads:
            results = world.server.matcher.match_many(
                [s.tower_ids for s in upload.samples]
            )
            matched = [
                MatchedSample(sample=s, match=r)
                for s, r in zip(upload.samples, results)
                if r.accepted
            ]
            clusters = cluster_trip_samples(matched, world.config.clustering)
            mapped = map_trip(clusters, world.server.constraint)
            if mapped is None:
                continue
            mapped_by_time = {
                (stop.arrival_s, stop.depart_s): stop.station_id
                for stop in mapped.stops
            }
            for cluster in clusters:
                truth = _true_station(cluster, tap_stop, visit_of)
                if truth is None:
                    continue
                pool = cluster.candidates()
                if not pool:
                    continue
                stats["clusters"] += 1
                if len(pool) > 1:
                    stats["multi_candidate"] += 1
                greedy = pool[0].station_id
                greedy_wrong = greedy != truth
                stats["greedy_errors"] += greedy_wrong
                final = mapped_by_time.get((cluster.arrival_s, cluster.depart_s))
                final_wrong = final is not None and final != truth
                stats["mapped_errors"] += final_wrong
                if greedy_wrong and not final_wrong and final is not None:
                    stats["repaired"] += 1
    return stats


def _true_station(cluster, tap_stop, visit_of):
    orders = [
        tap_stop.get(member.time_s)
        for member in cluster.samples
        if member.time_s in tap_stop
    ]
    if not orders:
        return None
    order = max(set(orders), key=orders.count)
    visit = visit_of.get(order)
    return visit.station_id if visit else None


def test_fig07_sequence_mapping(benchmark, paper_world):
    stats = benchmark.pedantic(run_study, args=(paper_world,), rounds=1, iterations=1)

    rows = [
        ["clusters examined", stats["clusters"]],
        ["clusters with >1 candidate", stats["multi_candidate"]],
        ["errors: greedy per-cluster choice", stats["greedy_errors"]],
        ["errors: after per-trip mapping", stats["mapped_errors"]],
        ["errors repaired by route constraint", stats["repaired"]],
    ]
    report(
        "fig07_sequence_mapping",
        render_table(
            ["quantity", "value"],
            rows,
            title="Fig. 7 — route-constrained sequence mapping",
        ),
    )

    assert stats["clusters"] > 100
    # The route constraint never makes identification worse, and the final
    # error rate is small (it feeds Table II's <8%).
    assert stats["mapped_errors"] <= stats["greedy_errors"]
    assert stats["mapped_errors"] / stats["clusters"] < 0.08
