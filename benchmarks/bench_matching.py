"""Ingest-path matching throughput: full scan vs pruned vs pruned+cached.

One campaign's uploads are generated once, then their cellular samples
are re-matched under three matcher configurations:

* ``full``          — whole-database Smith-Waterman scan (the reference
                      path, ``MatchingConfig(indexed=False, cache_size=0)``);
* ``pruned``        — inverted cell-id candidate index, no memo;
* ``pruned+cached`` — candidate index plus the LRU verdict memo.

Each configuration runs ``PASSES`` passes over the same upload stream
with a *warm* matcher, modelling steady-state ingest where re-delivered
batches and repeat scans recur; the first pass is the cold-cache cost,
the best pass the warm one.  Verdicts from the pruned and cached paths
are compared ``==``-exactly against the full scan on every pass — the
bench refuses to publish a number bought with a wrong verdict — and the
same matrix is repeated through the parallel :class:`IngestEngine` at
2 and 4 workers (per-worker index + memo, exactly the production
wiring).

Results land in ``benchmarks/reports/BENCH_matching.json`` (plus a
human-readable table in ``BENCH_matching.txt``).  ``--quick`` shrinks
the campaign and the worker matrix for the CI smoke job.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_matching.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import SystemConfig                     # noqa: E402
from repro.core.ingest import IngestEngine                # noqa: E402
from repro.core.match_index import canonical_key          # noqa: E402
from repro.core.matching import SampleMatcher             # noqa: E402
from repro.sim.world import World                         # noqa: E402
from repro.util.units import parse_hhmm                   # noqa: E402

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

#: Matcher configurations under test, in reporting order.
MODES: Tuple[Tuple[str, Dict], ...] = (
    ("full", {"indexed": False, "cache_size": 0}),
    ("pruned", {"indexed": True, "cache_size": 0}),
    ("pruned+cached", {"indexed": True, "cache_size": 4096}),
)

PASSES = 3


def _mode_config(base: SystemConfig, overrides: Dict) -> SystemConfig:
    return replace(base, matching=replace(base.matching, **overrides))


def _verdicts(prepared) -> List[Tuple]:
    """The flat per-sample verdict stream of a prepared-trip list."""
    return [
        (result.station_id, result.score, result.common_ids)
        for trip in prepared
        for result in (trip.matches or ())
    ]


def _assert_parity(mode: str, workers: int, got: List[Tuple],
                   expected: List[Tuple]) -> None:
    if got == expected:
        return
    diverged = sum(1 for a, b in zip(got, expected) if a != b)
    raise AssertionError(
        f"{mode} @ {workers} worker(s) diverged from the full scan: "
        f"{diverged} of {len(expected)} verdicts differ "
        f"(plus {abs(len(got) - len(expected))} count drift)"
    )


def _bench_serial(world: World, uploads, overrides: Dict):
    """PASSES timed match_many sweeps with one warm matcher; verdicts back."""
    matcher = SampleMatcher(
        world.database.as_dict(),
        _mode_config(world.config, overrides).matching,
    )
    batches = [[s.tower_ids for s in upload.samples] for upload in uploads]
    pass_seconds: List[float] = []
    verdicts: List[Tuple] = []
    for _ in range(PASSES):
        start = time.perf_counter()
        results = [matcher.match_many(batch) for batch in batches]
        pass_seconds.append(time.perf_counter() - start)
        verdicts = [
            (r.station_id, r.score, r.common_ids)
            for batch in results for r in batch
        ]
    return pass_seconds, verdicts


def _bench_workers(world: World, uploads, overrides: Dict, workers: int):
    """PASSES timed engine.prepare fan-outs (match+cluster+map); verdicts."""
    config = _mode_config(world.config, overrides)
    engine = IngestEngine(
        world.database.as_dict(), world.city.route_network, config,
        workers=workers,
    )
    pass_seconds: List[float] = []
    verdicts: List[Tuple] = []
    with engine:
        engine.start()                   # pool spin-up outside the clock
        for _ in range(PASSES):
            start = time.perf_counter()
            prepared = engine.prepare(uploads, keep_matches=True)
            pass_seconds.append(time.perf_counter() - start)
            verdicts = _verdicts(prepared)
    return pass_seconds, verdicts


def run(quick: bool = False, out: Optional[str] = None) -> Dict:
    world = World(seed=7)
    start, end = ("07:30", "08:15") if quick else ("07:00", "10:00")
    result = world.run(parse_hhmm(start), parse_hhmm(end),
                       with_official_feed=False)
    uploads = result.uploads
    samples = sum(len(u.samples) for u in uploads)
    unique = len({
        canonical_key(s.tower_ids) for u in uploads for s in u.samples
    })
    worker_counts: Sequence[int] = (1, 2) if quick else (1, 2, 4, 8)
    cores = os.cpu_count() or 1

    rows: List[Dict] = []
    speedups: Dict[str, Dict[str, float]] = {}
    for workers in worker_counts:
        reference: Optional[List[Tuple]] = None
        per_mode: Dict[str, float] = {}
        for mode, overrides in MODES:
            if workers == 1:
                pass_seconds, verdicts = _bench_serial(world, uploads, overrides)
            else:
                pass_seconds, verdicts = _bench_workers(
                    world, uploads, overrides, workers
                )
            if mode == "full":
                reference = verdicts
            else:
                _assert_parity(mode, workers, verdicts, reference)
            best = min(pass_seconds)
            per_mode[mode] = best
            rows.append({
                "workers": workers,
                "mode": mode,
                "host_cores": cores,
                "oversubscribed": workers > cores,
                "pass_seconds": [round(s, 6) for s in pass_seconds],
                "cold_s": round(pass_seconds[0], 6),
                "best_s": round(best, 6),
                "samples_per_s": round(samples / best, 1),
            })
        speedups[str(workers)] = {
            "pruned_vs_full": round(per_mode["full"] / per_mode["pruned"], 2),
            "cached_vs_full": round(
                per_mode["full"] / per_mode["pruned+cached"], 2
            ),
        }

    document = {
        "bench": "matching",
        "quick": quick,
        "campaign": {
            "seed": 7,
            "window": f"{start}-{end}",
            "uploads": len(uploads),
            "samples": samples,
            "unique_sequences": unique,
            "stops": len(world.database),
        },
        "passes": PASSES,
        "parity": "pruned and pruned+cached verdicts == full scan, exact",
        "host_cpu_cores": cores,
        "results": rows,
        "speedup_vs_full": speedups,
    }

    os.makedirs(REPORT_DIR, exist_ok=True)
    out = out or os.path.join(REPORT_DIR, "BENCH_matching.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    lines = [
        f"uploads {len(uploads)}  samples {samples}  "
        f"unique sequences {unique}  stops {len(world.database)}  "
        f"host cores {cores}",
        f"{'workers':>8} {'mode':<14} {'cold (ms)':>10} {'best (ms)':>10} "
        f"{'samples/s':>10} {'vs full':>8}",
    ]
    flagged = False
    for row in rows:
        ratio = speedups[str(row["workers"])].get(
            "pruned_vs_full" if row["mode"] == "pruned" else "cached_vs_full"
        ) if row["mode"] != "full" else 1.0
        mark = "*" if row["oversubscribed"] else " "
        flagged = flagged or row["oversubscribed"]
        lines.append(
            f"{row['workers']:>7}{mark} {row['mode']:<14} "
            f"{1e3 * row['cold_s']:>10.1f} {1e3 * row['best_s']:>10.1f} "
            f"{row['samples_per_s']:>10.0f} {ratio:>7.2f}x"
        )
    if flagged:
        lines.append(
            f"* workers exceed the {cores} host core(s); rows measure "
            "oversubscription overhead, not scaling"
        )
    lines.append("parity  pruned == pruned+cached == full (exact verdicts)")
    table = "\n".join(lines)
    print(f"===== matching ({'quick' if quick else 'default'} campaign) =====")
    print(table)
    with open(os.path.join(REPORT_DIR, "BENCH_matching.txt"), "w",
              encoding="utf-8") as handle:
        handle.write(table + "\n")
    print(f"wrote {out}")
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small campaign + fewer workers (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default: "
                             "benchmarks/reports/BENCH_matching.json)")
    args = parser.parse_args(argv)
    run(quick=args.quick, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
