"""Fig. 3 — an example area with the cellular fingerprints of 15 stops.

The paper lists the ordered cell-ID sets of 15 bus stops in one
neighbourhood and observes that "the sets of cell IDs for different bus
stops are highly different from each other".  This bench prints the
same kind of listing for a 15-stop corridor of route 179 and quantifies
the pairwise distinctness.
"""

import itertools

import numpy as np

from conftest import report
from repro.core.matching import smith_waterman
from repro.eval.reporting import render_table

N_STOPS = 15


def corridor_fingerprints(world):
    route = world.city.route_network.route("179-0")
    stations = route.station_sequence[:N_STOPS]
    return {sid: world.database.fingerprint(sid) for sid in stations}


def test_fig03_example_area(benchmark, paper_world):
    fingerprints = benchmark(corridor_fingerprints, paper_world)

    rows = [
        [station_id, ", ".join(str(t) for t in towers)]
        for station_id, towers in fingerprints.items()
    ]
    ids = list(fingerprints)
    pair_scores = [
        smith_waterman(fingerprints[a], fingerprints[b], paper_world.config.matching)
        for a, b in itertools.combinations(ids, 2)
    ]
    summary = (
        f"\npairwise similarity over the corridor: "
        f"mean={np.mean(pair_scores):.2f}, max={np.max(pair_scores):.2f}, "
        f"fraction zero={np.mean(np.array(pair_scores) == 0):.2f}"
    )
    report(
        "fig03_example_area",
        render_table(
            ["station", "cell IDs (descending RSS)"],
            rows,
            title="Fig. 3 — cellular fingerprints of 15 stops on route 179",
        )
        + summary,
    )

    assert len(fingerprints) == N_STOPS
    # Every stop sees the paper's 4–7 towers and no two adjacent stops
    # share an identical ordered set.
    for towers in fingerprints.values():
        assert 1 <= len(towers) <= 7
    assert len(set(fingerprints.values())) == N_STOPS
    # "Highly different": pairwise similarity rarely threatens γ = 2.
    assert np.mean(np.array(pair_scores) >= 2.0) < 0.1
