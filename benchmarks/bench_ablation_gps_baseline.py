"""Ablation (§II / §V) — our system versus a GPS-probe baseline.

The paper argues twice against GPS probing (VTrack-style): downtown GPS
errors of 40–130 m corrupt map matching, and continuous GPS costs
~340 mW against the app's ~82 mW.  This bench runs both systems over
the *same* simulated bus trips and compares map accuracy, coverage and
phone power.
"""

import itertools

import numpy as np

from conftest import BENCH_SEED, report
from repro.baseline import GpsProbeEstimator, simulate_gps_probe_trace
from repro.core import BackendServer
from repro.eval.reporting import render_table
from repro.phone import Handset, PowerModel, Sensor, record_participant_trips
from repro.sim.bus import simulate_bus_trip
from repro.util.units import parse_hhmm

N_TRIPS_PER_ROUTE = 3
ROUTES = ("179-0", "243-0", "252-0", "199-0")


def run_both(world):
    rng = np.random.default_rng(BENCH_SEED + 9)
    server = BackendServer(
        world.city.network, world.city.route_network, world.database, world.config
    )
    gps = GpsProbeEstimator(world.city.network)
    counter = itertools.count()
    end_s = 0.0
    for route_id in ROUTES:
        route = world.city.route_network.route(route_id)
        for k in range(N_TRIPS_PER_ROUTE):
            trip = simulate_bus_trip(
                route,
                parse_hhmm("08:00") + 1500.0 * k,
                world.traffic,
                counter,
                rng=rng,
                bus_config=world.config.bus,
                rider_config=world.config.riders,
            )
            end_s = max(end_s, trip.end_s)
            server.receive_trips(
                record_participant_trips(
                    trip, world.city.registry, world.sampler, world.config, rng=rng
                )
            )
            gps.ingest(
                simulate_gps_probe_trace(trip, world.city.network, rng=rng)
            )
    return server, gps, end_s


def evaluate(world, traffic_map, end_s):
    snap = traffic_map.snapshot(end_s)
    errors = [
        abs(r.speed_kmh - 3.6 * world.traffic.car_speed_ms(seg, end_s - r.age_s))
        for seg, r in snap.readings.items()
    ]
    return {
        "segments": len(snap.readings),
        "mae": float(np.mean(errors)) if errors else float("nan"),
    }


def test_ablation_gps_baseline(benchmark, paper_world):
    server, gps, end_s = benchmark.pedantic(
        run_both, args=(paper_world,), rounds=1, iterations=1
    )
    ours = evaluate(paper_world, server.traffic_map, end_s)
    theirs = evaluate(paper_world, gps.traffic_map, end_s)

    power = PowerModel()
    our_power = power.mean_power_mw(
        Handset.HTC_SENSATION, [Sensor.CELLULAR, Sensor.MIC_GOERTZEL]
    )
    gps_power = power.mean_power_mw(Handset.HTC_SENSATION, [Sensor.GPS])

    rows = [
        ["segments with estimates", ours["segments"], theirs["segments"]],
        ["speed MAE vs ground truth (km/h)", round(ours["mae"], 2),
         round(theirs["mae"], 2)],
        ["phone power (mW)", round(our_power, 0), round(gps_power, 0)],
        ["map-match discards", "n/a",
         f"{gps.pairs_discarded} of {gps.pairs_discarded + gps.pairs_used}"],
    ]
    report(
        "ablation_gps_baseline",
        render_table(
            ["metric", "ours (beep+cellular)", "GPS probe (VTrack-style)"],
            rows,
            title="§II ablation — same bus trips, two sensing designs",
        ),
    )

    # The paper's argument: comparable (or better) accuracy at a
    # fraction of the energy.
    assert ours["mae"] <= theirs["mae"] + 1.0
    assert gps_power > 3.0 * our_power
    assert gps.pairs_discarded > 0
