"""Table III — phone power consumption per sensor setting (mW).

Paper (HTC Sensation / Nexus One, screen off, 10-minute Monsoon
sessions): baseline ≈70/84, cellular 1 Hz ≈72/85, GPS 0.5 Hz ≈340/333,
cellular+mic(Goertzel) ≈82/96, GPS+mic(Goertzel) ≈447/443.  The app's
draw is within ~12 mW of idle; using GPS instead would cost ~5×.
"""

import numpy as np

from conftest import BENCH_SEED, report
from repro.eval.reporting import render_table
from repro.phone.power import Handset, PowerModel, TABLE_III_SETTINGS

PAPER_MW = {
    "No sensors": (70.0, 84.0),
    "Cellular 1Hz": (72.0, 85.0),
    "GPS 0.5Hz": (340.0, 333.0),
    "Cellular+Mic(Goertzel)": (82.0, 96.0),
    "GPS+Mic(Goertzel)": (447.0, 443.0),
}


def run_sessions(model, rng):
    return model.table_iii(rng=rng, sessions=10)


def test_table3_power(benchmark, bench_rng):
    model = PowerModel()
    table = benchmark(run_sessions, model, bench_rng)

    rows = []
    for label, _ in TABLE_III_SETTINGS:
        paper_htc, paper_nexus = PAPER_MW[label]
        htc_mean, htc_std = table[label]["htc"]
        nexus_mean, nexus_std = table[label]["nexus"]
        rows.append([
            label, paper_htc, f"{htc_mean:.0f} ({htc_std:.0f})",
            paper_nexus, f"{nexus_mean:.0f} ({nexus_std:.0f})",
        ])
    report(
        "table3_power",
        render_table(
            ["sensor setting", "paper HTC", "measured HTC",
             "paper Nexus", "measured Nexus"],
            rows,
            title="Table III — power consumption (mW, mean over sessions)",
        ),
    )

    for label, (paper_htc, paper_nexus) in PAPER_MW.items():
        htc_mean, _ = table[label]["htc"]
        nexus_mean, _ = table[label]["nexus"]
        np.testing.assert_allclose(htc_mean, paper_htc, rtol=0.25)
        np.testing.assert_allclose(nexus_mean, paper_nexus, rtol=0.25)
    # The two §IV-D headline comparisons.
    app_htc = model.mean_power_mw(
        Handset.HTC_SENSATION, dict(TABLE_III_SETTINGS)["Cellular+Mic(Goertzel)"]
    )
    gps_htc = model.mean_power_mw(
        Handset.HTC_SENSATION, dict(TABLE_III_SETTINGS)["GPS+Mic(Goertzel)"]
    )
    assert gps_htc / app_htc > 4.0
