"""Fig. 10 — per-segment time series: v_A vs official v_T vs Google level.

Paper: two road segments, 9:30 AM – 5:30 PM, 17 values each averaged
over 15-minute windows.  v_A matches v_T closely at low speeds, runs
below it at high speeds (taxis drive more aggressively than buses in
light traffic), and follows v_T's variation pattern, while the
Google-style indicator only shows 4 coarse, slowly-updating levels.
"""

import numpy as np

from conftest import BENCH_SEED, report
from repro.eval.comparison import segment_time_series
from repro.eval.google_maps import GoogleMapsIndicator
from repro.eval.metrics import pearson_correlation
from repro.eval.reporting import render_table
from repro.util.units import hhmm, parse_hhmm

WINDOW_S = 900.0
START = parse_hhmm("09:30")
END = START + 17 * WINDOW_S          # the paper's 17 windows


def pick_segments(result, google):
    """One morning-congested segment (A) and one light segment (B).

    Only segments with a v_A/v_T pair in (almost) every window qualify,
    mirroring the paper's choice of two well-probed road segments;
    segments the Google-style baseline also covers are preferred so all
    three series can be compared.
    """
    windows = [START + k * WINDOW_S + WINDOW_S / 2 for k in range(17)]
    traffic_map = result.server.traffic_map
    qualified = []
    for segment_id in sorted(result.city.route_network.covered_segments()):
        speeds = []
        for mid in windows:
            v_a = traffic_map.published_speed(segment_id, mid)
            v_t = result.official.speed_kmh(segment_id, mid)
            if v_a is not None and v_t is not None:
                speeds.append(v_a)
        if len(speeds) >= 15:
            qualified.append((segment_id, float(np.mean(speeds))))
    if len(qualified) < 2:
        raise AssertionError("no well-probed segments in the campaign")
    on_google = [q for q in qualified if q[0] in google.covered_segments]
    pool = on_google if len(on_google) >= 2 else qualified
    slow = min(pool, key=lambda pair: pair[1])
    fast = max(pool, key=lambda pair: pair[1])
    return slow[0], fast[0]


def build_series(result, google, segment_id):
    return segment_time_series(
        segment_id,
        result.server.traffic_map,
        result.official,
        START,
        END,
        window_s=WINDOW_S,
        google=google,
    )


def test_fig10_segment_series(benchmark, paper_world, day_result):
    google = GoogleMapsIndicator(
        paper_world.city.network, paper_world.traffic,
        paper_world.config.google_maps, seed=BENCH_SEED,
    )
    seg_a, seg_b = pick_segments(day_result, google)
    series_a = benchmark.pedantic(
        build_series, args=(day_result, google, seg_a), rounds=1, iterations=1
    )
    series_b = build_series(day_result, google, seg_b)

    text_parts = []
    correlations = {}
    gaps = {}
    for label, segment_id, series in (("A", seg_a, series_a), ("B", seg_b, series_b)):
        rows = []
        paired_est, paired_off = [], []
        for point in series:
            level = point.google_level.name if point.google_level else "-"
            rows.append([
                hhmm(point.time_s),
                "-" if point.estimated_kmh is None else round(point.estimated_kmh, 1),
                "-" if point.official_kmh is None else round(point.official_kmh, 1),
                level,
            ])
            if point.estimated_kmh is not None and point.official_kmh is not None:
                paired_est.append(point.estimated_kmh)
                paired_off.append(point.official_kmh)
        correlations[label] = pearson_correlation(paired_est, paired_off)
        gaps[label] = float(np.mean(np.array(paired_off) - np.array(paired_est)))
        from repro.eval.figures import ascii_chart

        chart = ascii_chart(
            {
                "v_A": [(p.time_s / 3600.0, p.estimated_kmh) for p in series],
                "v_T": [(p.time_s / 3600.0, p.official_kmh) for p in series],
            },
            x_label="hour of day",
            y_label="km/h",
        )
        text_parts.append(
            render_table(
                ["window", "v_A (ours)", "v_T (official)", "Google level"],
                rows,
                title=f"Fig. 10 — segment {label} = {segment_id}",
            )
            + f"\ncorrelation(v_A, v_T) = {correlations[label]:.2f}; "
            f"mean v_T - v_A = {gaps[label]:.1f} km/h\n"
            + chart + "\n"
        )
    report("fig10_segments", "\n".join(text_parts))

    for label, series in (("A", series_a), ("B", series_b)):
        have_both = [
            p for p in series
            if p.estimated_kmh is not None and p.official_kmh is not None
        ]
        assert len(have_both) >= 12, f"segment {label} lacks comparison windows"
        # v_A follows v_T's variation pattern (the paper's key claim).
        assert correlations[label] > 0.35, label
    # The official taxi feed runs above our bus-derived estimate on
    # average (aggressive taxi driving), and the faster segment shows
    # the larger gap.
    assert gaps["B"] > 0.0
    assert gaps["B"] >= gaps["A"] - 1.0
