"""Fig. 5 — clustering accuracy versus the threshold ε.

The paper sweeps ε from 0 to 2 in steps of 0.1 on a trial with bus
route 243 and finds a broad accuracy plateau (≈0.3–1.3); they pick
ε = 0.6.  If ε is too large, samples from one stop shatter into several
clusters; if too small, nearby bursts merge.

Accuracy here is the Rand index between the produced clustering and the
ground-truth partition of samples by the stop visit they were heard at
(pair-counting accuracy, 1.0 = perfect co-clustering).
"""

import itertools

import numpy as np

from conftest import BENCH_SEED, report
from repro.config import ClusteringConfig
from repro.core.clustering import cluster_trip_samples
from repro.phone.app import record_participant_trips
from repro.sim.bus import simulate_bus_trip
from repro.eval.reporting import render_table
from repro.util.units import parse_hhmm

N_TRIPS = 5
EPSILONS = [round(0.1 * k, 1) for k in range(0, 21)]
PAPER_CHOICE = 0.6


def build_matched_uploads(world):
    """Simulate route-243 trips and return (matched samples, true labels)."""
    rng = np.random.default_rng(BENCH_SEED + 5)
    route = world.city.route_network.route("243-0")
    rider_ids = itertools.count()
    instances = []
    for k in range(N_TRIPS):
        trace = simulate_bus_trip(
            route,
            parse_hhmm("08:00") + 1800.0 * k,
            world.traffic,
            rider_ids,
            rng=rng,
            bus_config=world.config.bus,
            rider_config=world.config.riders,
        )
        tap_stop = {tap.time_s: tap.stop_order for tap in trace.taps}
        uploads = record_participant_trips(
            trace, world.city.registry, world.sampler, world.config, rng=rng
        )
        for upload in uploads:
            results = world.server.matcher.match_many(
                [s.tower_ids for s in upload.samples]
            )
            matched, labels = [], []
            from repro.core.clustering import MatchedSample

            for sample, result in zip(upload.samples, results):
                if not result.accepted or sample.time_s not in tap_stop:
                    continue
                matched.append(MatchedSample(sample=sample, match=result))
                labels.append(tap_stop[sample.time_s])
            if len(matched) >= 4:
                instances.append((matched, labels))
    return instances


def rand_index(predicted, truth):
    """Pair-counting agreement between two label sequences."""
    agree = total = 0
    for i, j in itertools.combinations(range(len(truth)), 2):
        total += 1
        same_pred = predicted[i] == predicted[j]
        same_true = truth[i] == truth[j]
        agree += same_pred == same_true
    return agree / total if total else 1.0


def accuracy_at(instances, epsilon):
    scores = []
    config = ClusteringConfig(threshold=epsilon)
    for matched, labels in instances:
        clusters = cluster_trip_samples(matched, config)
        assignment = {}
        for cluster_idx, cluster in enumerate(clusters):
            for member in cluster.samples:
                assignment[id(member)] = cluster_idx
        predicted = [assignment[id(m)] for m in matched]
        scores.append(rand_index(predicted, labels))
    return float(np.mean(scores))


def test_fig05_clustering_threshold(benchmark, paper_world):
    instances = build_matched_uploads(paper_world)
    accuracies = {eps: accuracy_at(instances, eps) for eps in EPSILONS}
    benchmark(accuracy_at, instances, PAPER_CHOICE)

    rows = [[eps, round(acc, 4)] for eps, acc in accuracies.items()]
    best = max(accuracies.values())
    from repro.eval.figures import ascii_chart

    report(
        "fig05_threshold",
        render_table(
            ["epsilon", "clustering accuracy"],
            rows,
            title="Fig. 5 — clustering accuracy vs threshold ε "
                  f"(paper picks ε = {PAPER_CHOICE})",
        )
        + f"\nbest accuracy {best:.4f}; at paper's ε: {accuracies[PAPER_CHOICE]:.4f}\n\n"
        + ascii_chart(
            {"accuracy": sorted(accuracies.items())},
            x_label="epsilon",
            y_label="Rand index",
        ),
    )

    # The paper's choice sits on the plateau...
    assert accuracies[PAPER_CHOICE] >= 0.98 * best
    assert accuracies[PAPER_CHOICE] > 0.9
    # ...and an over-tight threshold shatters clusters (right-side drop).
    assert accuracies[2.0] < accuracies[PAPER_CHOICE]
