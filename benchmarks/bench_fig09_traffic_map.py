"""Fig. 9 — traffic map snapshots at 8:30 AM and 5:00 PM.

Paper: average speeds mostly 30–50 km/h; the morning snapshot has
clusters of <20 km/h segments near the university/rail-station shuttle
corridor while 5 PM is visibly faster ("few road segments at 5:00PM
with travel speed lower than 20 km/h"); road coverage exceeds 50%,
clearly above the Google-Maps-style baseline for the same area.
"""

import numpy as np

from conftest import BENCH_SEED, report
from repro.core.traffic_map import SpeedLevel
from repro.eval.google_maps import GoogleMapsIndicator
from repro.eval.reporting import render_table
from repro.util.units import parse_hhmm

MORNING = parse_hhmm("08:30")
EVENING = parse_hhmm("17:00")


def snapshots(result):
    traffic_map = result.server.traffic_map
    return traffic_map.published_snapshot(MORNING), traffic_map.published_snapshot(EVENING)


def test_fig09_traffic_map(benchmark, paper_world, day_result):
    morning, evening = benchmark.pedantic(
        snapshots, args=(day_result,), rounds=1, iterations=1
    )
    google = GoogleMapsIndicator(
        paper_world.city.network, paper_world.traffic,
        paper_world.config.google_maps, seed=BENCH_SEED,
    )

    def histogram_row(label, snap):
        histogram = snap.level_histogram()
        n = max(1, len(snap.readings))
        return [
            label,
            f"{snap.mean_speed_kmh():.1f}",
            f"{100 * histogram[SpeedLevel.VERY_SLOW] / n:.0f}%",
            f"{100 * histogram[SpeedLevel.SLOW] / n:.0f}%",
            f"{100 * (histogram[SpeedLevel.MODERATE] + histogram[SpeedLevel.NORMAL]) / n:.0f}%",
            f"{100 * histogram[SpeedLevel.FAST] / n:.0f}%",
            f"{100 * snap.coverage:.0f}%",
        ]

    rows = [
        histogram_row("8:30 AM", morning),
        histogram_row("5:00 PM", evening),
    ]
    from repro.eval.figures import ascii_traffic_map

    comparison = (
        f"\ncoverage: ours {100 * morning.coverage:.0f}% vs "
        f"Google-style baseline {100 * google.coverage:.0f}% "
        "(paper: ours > 50%, far above the consumer map)"
    )
    maps = (
        "\n\n8:30 AM map:\n"
        + ascii_traffic_map(paper_world.city, morning)
        + "\n\n5:00 PM map:\n"
        + ascii_traffic_map(paper_world.city, evening)
    )
    report(
        "fig09_traffic_map",
        render_table(
            ["snapshot", "mean km/h", "<20", "20-30", "30-50", ">50", "coverage"],
            rows,
            title="Fig. 9 — instant traffic maps (5 display levels)",
        )
        + comparison
        + maps,
    )

    # Coverage beats 50% of all roads and the consumer-map baseline.
    assert morning.coverage > 0.5
    assert morning.coverage > google.coverage
    # Morning rush is slower overall than 5 PM, with more crawling
    # segments (the paper's headline contrast between the snapshots).
    assert morning.mean_speed_kmh() < evening.mean_speed_kmh()
    m_hist = morning.level_histogram()
    e_hist = evening.level_histogram()
    assert m_hist[SpeedLevel.VERY_SLOW] >= e_hist[SpeedLevel.VERY_SLOW]
    # Speeds are mostly in the paper's 30–50 km/h band.
    for snap in (morning, evening):
        mids = [
            r.speed_kmh for r in snap.readings.values() if 30.0 <= r.speed_kmh <= 50.0
        ]
        assert len(mids) > 0.4 * len(snap.readings)
